// Package mpsim provides the message-passing runtime substituting for MPI on
// the paper's IBM SP2: P virtual processors run as goroutines and exchange
// typed messages through unbounded per-processor mailboxes. Message and byte
// counters give the experiments their communication-volume observables.
//
// Mailboxes are unbounded so the fan-in protocol can never deadlock on
// buffer space (MPI eager-mode semantics); ordering is FIFO per sender and
// receiver like MPI point-to-point.
package mpsim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/pastix-go/pastix/internal/trace"
)

// ErrClosed is returned by Recv when the communicator was shut down while
// waiting — typically because a peer failed. Run reports the peer's original
// error in preference to these secondary ones.
var ErrClosed = errors.New("mpsim: mailbox closed")

// Message is the unit of communication.
type Message struct {
	Kind int8 // application-defined taxonomy
	Src  int  // sending processor
	Dst  int  // receiving processor
	Tag  int  // application-defined routing key (e.g. destination task id)
	Data []float64
}

// Comm connects P virtual processors.
type Comm struct {
	p        int
	boxes    []mailbox
	nMsgs    atomic.Int64
	nBytes   atomic.Int64
	maxInFly atomic.Int64
	inFlight atomic.Int64
	rec      *trace.Recorder
}

type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	closed bool
}

// NewComm creates a communicator for p processors.
func NewComm(p int) *Comm {
	if p <= 0 {
		panic("mpsim: non-positive processor count")
	}
	c := &Comm{p: p, boxes: make([]mailbox, p)}
	for i := range c.boxes {
		c.boxes[i].cond = sync.NewCond(&c.boxes[i].mu)
	}
	return c
}

// P returns the number of processors.
func (c *Comm) P() int { return c.p }

// SetTrace attaches an execution-trace recorder: every Send and Recv is
// recorded as an instant event (message kind, tag, payload bytes) on the
// acting processor. Call before Run; a nil recorder disables recording.
func (c *Comm) SetTrace(rec *trace.Recorder) { c.rec = rec }

// Send enqueues m into the destination mailbox. Data is NOT copied: the
// sender must not mutate it afterwards (same contract as MPI_Isend buffers).
func (c *Comm) Send(m Message) {
	if m.Dst < 0 || m.Dst >= c.p {
		panic(fmt.Sprintf("mpsim: send to processor %d of %d", m.Dst, c.p))
	}
	if m.Src == m.Dst {
		panic("mpsim: self-send; local work must not use the network")
	}
	c.nMsgs.Add(1)
	c.nBytes.Add(int64(len(m.Data)) * 8)
	if c.rec != nil {
		c.rec.Comm(m.Src, trace.KindSend, m.Kind, m.Tag, int64(len(m.Data))*8)
	}
	if f := c.inFlight.Add(1); f > c.maxInFly.Load() {
		c.maxInFly.Store(f)
	}
	b := &c.boxes[m.Dst]
	b.mu.Lock()
	if b.closed {
		// The communicator is shutting down after a failure elsewhere; drop
		// the message so the sender can unwind and report its own state.
		b.mu.Unlock()
		c.inFlight.Add(-1)
		return
	}
	b.queue = append(b.queue, m)
	b.mu.Unlock()
	b.cond.Signal()
}

// Recv blocks until a message for processor p arrives and returns it.
func (c *Comm) Recv(p int) (Message, error) {
	b := &c.boxes[p]
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.queue) == 0 {
		if b.closed {
			return Message{}, fmt.Errorf("mpsim: receive on %d: %w", p, ErrClosed)
		}
		b.cond.Wait()
	}
	m := b.queue[0]
	b.queue = b.queue[1:]
	c.inFlight.Add(-1)
	if c.rec != nil {
		c.rec.Comm(p, trace.KindRecv, m.Kind, m.Tag, int64(len(m.Data))*8)
	}
	return m, nil
}

// TryRecv returns a pending message without blocking; ok is false when the
// mailbox is empty.
func (c *Comm) TryRecv(p int) (Message, bool) {
	b := &c.boxes[p]
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.queue) == 0 {
		return Message{}, false
	}
	m := b.queue[0]
	b.queue = b.queue[1:]
	c.inFlight.Add(-1)
	if c.rec != nil {
		c.rec.Comm(p, trace.KindRecv, m.Kind, m.Tag, int64(len(m.Data))*8)
	}
	return m, true
}

// Close closes every mailbox, waking blocked receivers with an error.
// Call it after all processors have finished to catch protocol leaks.
func (c *Comm) Close() {
	for i := range c.boxes {
		b := &c.boxes[i]
		b.mu.Lock()
		b.closed = true
		b.mu.Unlock()
		b.cond.Broadcast()
	}
}

// Stats reports the total messages and bytes sent, and the peak number of
// in-flight messages.
func (c *Comm) Stats() (msgs, bytes, maxInFlight int64) {
	return c.nMsgs.Load(), c.nBytes.Load(), c.maxInFly.Load()
}

// Run launches fn on each of the P processors and waits for completion. The
// first error (or panic, re-raised) is returned.
func (c *Comm) Run(fn func(p int) error) error {
	errs := make([]error, c.p)
	panics := make([]any, c.p)
	var wg sync.WaitGroup
	for p := 0; p < c.p; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[p] = r
					c.Close() // unblock peers stuck in Recv
				}
			}()
			errs[p] = fn(p)
			if errs[p] != nil {
				c.Close()
			}
		}(p)
	}
	wg.Wait()
	for p, r := range panics {
		if r != nil {
			panic(fmt.Sprintf("mpsim: processor %d panicked: %v", p, r))
		}
	}
	// Prefer a root-cause error over the secondary closed-mailbox errors the
	// shutdown broadcast induces on the other processors.
	var closedErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, ErrClosed) {
			closedErr = err
			continue
		}
		return err
	}
	return closedErr
}
