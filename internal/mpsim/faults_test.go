package mpsim

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// ruleInjector is a deterministic rule-based Injector for testing the
// reliability layer in isolation (the production injector lives in
// internal/faults, which imports this package).
type ruleInjector struct {
	dropEvery  int64 // drop first transmission of every n-th data message
	dupEvery   int64 // duplicate every n-th data message
	delayEvery int64 // delay every n-th data message
	delay      time.Duration
	dropAll    bool
	dropAcks   bool
}

func (r *ruleInjector) FateOf(src, dst int, seq int64, attempt int, ack bool) Fate {
	var f Fate
	if r.dropAll {
		if !ack || r.dropAcks {
			f.Drop = true
		}
		return f
	}
	if ack {
		return f
	}
	if r.dropEvery > 0 && seq%r.dropEvery == 0 && attempt == 0 {
		f.Drop = true
		return f
	}
	if r.dupEvery > 0 && seq%r.dupEvery == 1 {
		f.Dup = true
	}
	if r.delayEvery > 0 && seq%r.delayEvery == 2 {
		f.Delay = r.delay
	}
	return f
}

func (r *ruleInjector) BreakStall(p int) bool { return false }

// Under drops, duplicates and delays, every message must still arrive exactly
// once and in per-sender FIFO order, with resend activity recorded.
func TestReliableDeliveryUnderChaos(t *testing.T) {
	const P = 4
	const perSender = 120
	c := NewComm(P)
	c.EnableFaults(
		&ruleInjector{dropEvery: 3, dupEvery: 4, delayEvery: 5, delay: 300 * time.Microsecond},
		Reliability{RTO: 500 * time.Microsecond, Tick: 100 * time.Microsecond},
	)
	err := c.Run(func(p int) error {
		if p == 0 {
			next := make(map[int]int)
			for i := 0; i < (P-1)*perSender; i++ {
				m, err := c.Recv(0)
				if err != nil {
					return err
				}
				if m.Tag != next[m.Src] {
					return fmt.Errorf("from %d: got tag %d, want %d", m.Src, m.Tag, next[m.Src])
				}
				next[m.Src]++
			}
			if _, ok := c.TryRecv(0); ok {
				return fmt.Errorf("extra message delivered")
			}
			return nil
		}
		for i := 0; i < perSender; i++ {
			c.Send(Message{Src: p, Dst: 0, Tag: i, Data: []float64{float64(i)}})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fs := c.FaultStats()
	if fs.Resends == 0 {
		t.Fatal("expected resend activity under injected drops")
	}
	msgs, _, _ := c.Stats()
	if msgs != int64((P-1)*perSender) {
		t.Fatalf("app-level message count %d, want %d (retransmissions must not be counted)", msgs, (P-1)*perSender)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	c := NewComm(2)
	c.EnableFaults(
		&ruleInjector{dropAll: true, dropAcks: true},
		Reliability{RTO: 100 * time.Microsecond, MaxRTO: 200 * time.Microsecond, RetryLimit: 3, Tick: 50 * time.Microsecond},
	)
	err := c.Run(func(p int) error {
		if p == 0 {
			c.Send(Message{Src: 0, Dst: 1, Tag: 1, Data: []float64{1}})
			return nil
		}
		_, err := c.Recv(1)
		return err
	})
	if !errors.Is(err, ErrFaultBudget) {
		t.Fatalf("want ErrFaultBudget, got %v", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Op != "resend" || be.Proc != 0 || be.Dst != 1 {
		t.Fatalf("budget detail wrong: %+v", be)
	}
}

func TestWorkerRestartAfterCrash(t *testing.T) {
	c := NewComm(2)
	c.EnableFaults(&ruleInjector{}, Reliability{})
	var attempts atomic.Int64
	err := c.Run(func(p int) error {
		if p == 0 {
			m, err := c.Recv(0)
			if err != nil {
				return err
			}
			if m.Tag != 9 {
				return fmt.Errorf("bad tag %d", m.Tag)
			}
			return nil
		}
		if attempts.Add(1) == 1 {
			return fmt.Errorf("injected: %w", ErrCrashed)
		}
		c.Send(Message{Src: 1, Dst: 0, Tag: 9})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("worker ran %d times, want 2", got)
	}
	if fs := c.FaultStats(); fs.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", fs.Restarts)
	}
}

func TestRestartBudgetExhausted(t *testing.T) {
	c := NewComm(2)
	c.EnableFaults(&ruleInjector{}, Reliability{RestartBudget: 2})
	err := c.Run(func(p int) error {
		if p == 1 {
			return ErrCrashed // crashes forever
		}
		_, err := c.Recv(0)
		return err
	})
	if !errors.Is(err, ErrFaultBudget) {
		t.Fatalf("want ErrFaultBudget, got %v", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Op != "restart" || be.Proc != 1 || be.Attempts != 2 {
		t.Fatalf("budget detail wrong: %+v", be)
	}
}

// A worker's own failure must win over the secondary budget/closed errors.
func TestRealErrorBeatsBudgetError(t *testing.T) {
	c := NewComm(2)
	c.EnableFaults(&ruleInjector{}, Reliability{RestartBudget: 1})
	rootCause := errors.New("numerical breakdown")
	err := c.Run(func(p int) error {
		if p == 1 {
			return rootCause
		}
		return ErrCrashed
	})
	if !errors.Is(err, rootCause) {
		t.Fatalf("root cause lost: %v", err)
	}
}

// The peak in-flight stat must track exactly under a deterministic
// single-threaded send/recv sequence (the CAS loop fix; the concurrent case
// is covered by the chaos tests under -race).
func TestMaxInFlightPeak(t *testing.T) {
	c := NewComm(2)
	for i := 0; i < 10; i++ {
		c.Send(Message{Src: 0, Dst: 1, Tag: i})
	}
	for i := 0; i < 3; i++ {
		if _, ok := c.TryRecv(1); !ok {
			t.Fatal("missing message")
		}
	}
	for i := 0; i < 5; i++ {
		c.Send(Message{Src: 0, Dst: 1, Tag: 10 + i})
	}
	if _, _, peak := c.Stats(); peak != 12 {
		t.Fatalf("peak in-flight %d, want 12", peak)
	}
}
