package service

import (
	"container/list"
	"context"
	"errors"
	"sync"

	"github.com/pastix-go/pastix"
)

// analysisCache is the pattern-keyed LRU of analyses with single-flight
// deduplication: concurrent Get calls for one fingerprint run exactly one
// analysis (the leader); the others (followers) block on its result and
// count as coalesced. A leader that fails because its own request context
// was cancelled does not poison the followers — the entry is abandoned and
// one follower promotes itself to leader under its own context. Genuine
// analysis errors (e.g. an invalid matrix) propagate to every waiter and are
// not cached.
type analysisCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*cacheEntry
	order   *list.List // completed entries, most recently used at the front

	// analyze runs the uncached analysis pass (injected for tests).
	analyze func(ctx context.Context, a *pastix.Matrix) (*pastix.Analysis, error)

	m *Metrics
}

type cacheEntry struct {
	key  string
	elem *list.Element // nil while in flight

	done      chan struct{} // closed when the flight finishes
	an        *pastix.Analysis
	err       error
	abandoned bool // leader's own ctx was cancelled; waiters must re-lead
}

func newAnalysisCache(cap int, m *Metrics,
	analyze func(ctx context.Context, a *pastix.Matrix) (*pastix.Analysis, error)) *analysisCache {
	return &analysisCache{
		cap:     cap,
		entries: make(map[string]*cacheEntry),
		order:   list.New(),
		analyze: analyze,
		m:       m,
	}
}

// Get returns the analysis for the fingerprint key, computing it from a at
// most once across concurrent callers. hit reports whether the result came
// from the cache (or a coalesced in-flight analysis) rather than a fresh
// pass led by this caller.
func (c *analysisCache) Get(ctx context.Context, key string, a *pastix.Matrix) (an *pastix.Analysis, hit bool, err error) {
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			select {
			case <-e.done: // completed entry: a cache hit
				c.order.MoveToFront(e.elem)
				c.m.CacheHits.Inc()
				c.mu.Unlock()
				return e.an, true, nil
			default: // in flight: wait for the leader
				c.m.CacheCoalesced.Inc()
				c.mu.Unlock()
				select {
				case <-e.done:
					if e.abandoned {
						continue // leader cancelled; try to become the new leader
					}
					if e.err != nil {
						return nil, false, e.err
					}
					return e.an, true, nil
				case <-ctx.Done():
					return nil, false, ctx.Err()
				}
			}
		}
		// Become the leader.
		e := &cacheEntry{key: key, done: make(chan struct{})}
		c.entries[key] = e
		c.m.CacheMisses.Inc()
		c.mu.Unlock()

		e.an, e.err = c.analyze(ctx, a)

		c.mu.Lock()
		if e.err != nil {
			// The entry never becomes resident. Cancellation of the leader's
			// own context is not an analysis verdict: mark the flight abandoned
			// so followers retry instead of inheriting the error.
			e.abandoned = ctx.Err() != nil && errors.Is(e.err, ctx.Err())
			delete(c.entries, key)
			close(e.done)
			c.mu.Unlock()
			return nil, false, e.err
		}
		e.elem = c.order.PushFront(e)
		close(e.done)
		for c.order.Len() > c.cap {
			lru := c.order.Back()
			c.order.Remove(lru)
			delete(c.entries, lru.Value.(*cacheEntry).key)
			c.m.CacheEvictions.Inc()
		}
		c.mu.Unlock()
		return e.an, false, nil
	}
}

// Len returns the number of resident (completed) entries.
func (c *analysisCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Keys returns the resident fingerprints, most recently used first.
func (c *analysisCache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, c.order.Len())
	for e := c.order.Front(); e != nil; e = e.Next() {
		keys = append(keys, e.Value.(*cacheEntry).key)
	}
	return keys
}
