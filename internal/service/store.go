package service

import (
	"errors"
	"fmt"
	"sync"

	"github.com/pastix-go/pastix"
)

// Errors of the factor handle store.
var (
	// ErrUnknownHandle reports a solve or release against a handle that was
	// never issued or has been released.
	ErrUnknownHandle = errors.New("service: unknown factor handle")
	// ErrStoreFull reports that MaxFactors live handles exist; release one
	// before factorizing again.
	ErrStoreFull = errors.New("service: factor store full")
)

// factorEntry is one live factorization a client can solve against.
type factorEntry struct {
	handle      string
	fingerprint string
	n           int
	an          *pastix.Analysis
	f           *pastix.Factor
	batch       *batcher
	// bytes is the resident factor-value storage of f (compressed size when
	// the factor is BLR-compressed); denseBytes is what the same factor costs
	// in dense form (equal to bytes for an uncompressed factor). Both are
	// frozen at Put, when the factor's storage form is final.
	bytes      int64
	denseBytes int64
	// src is the matrix the factor was computed from. It is what makes the
	// handle transferable: /v1/replicate ships (matrix, payload) so the
	// receiver can rebuild the analysis and bind refinement to the same
	// values, and the re-factorize fallback recomputes from it bitwise.
	src *pastix.Matrix
	// idemKey is the idempotency key the factorize committed under ("" if
	// none). It travels with a /v1/replicate export so the receiving node can
	// replay a retried factorize carrying the original key instead of
	// double-applying it.
	idemKey string
	// durable marks a handle whose factorize was journaled (or replayed from
	// the journal) — it survives a restart of this node.
	durable bool
}

// factorStore issues and resolves factor handles. Handles are opaque
// strings; each carries its own multi-RHS batcher.
type factorStore struct {
	mu  sync.Mutex
	max int
	seq uint64
	m   map[string]*factorEntry
}

func newFactorStore(max int) *factorStore {
	return &factorStore{max: max, m: make(map[string]*factorEntry)}
}

// Put registers a factorization and returns its handle.
func (s *factorStore) Put(e *factorEntry) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.m) >= s.max {
		return "", fmt.Errorf("%w: %d live handles", ErrStoreFull, len(s.m))
	}
	s.seq++
	e.handle = fmt.Sprintf("f-%06d-%.8s", s.seq, e.fingerprint)
	if e.f != nil {
		e.bytes = e.f.MemoryBytes()
		e.denseBytes = e.bytes
		if st := e.f.CompressionStats(); st != nil {
			e.denseBytes = st.DenseBytes
		}
	}
	s.m[e.handle] = e
	return e.handle, nil
}

// PutRestored registers a replayed factorization under the handle it was
// originally issued, advancing the sequence counter past it so fresh handles
// never collide with recovered ones. Recovery is exempt from the MaxFactors
// bound: every recovered handle was acknowledged durable in a past life, and
// refusing to recover it would silently lose accepted work just because the
// bound was lowered between runs.
func (s *factorStore) PutRestored(e *factorEntry, handle string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.m[handle]; exists {
		return fmt.Errorf("service: restored handle %q already live", handle)
	}
	var seq uint64
	if _, err := fmt.Sscanf(handle, "f-%06d-", &seq); err != nil {
		return fmt.Errorf("service: restored handle %q is malformed: %w", handle, err)
	}
	if seq > s.seq {
		s.seq = seq
	}
	e.handle = handle
	if e.f != nil {
		e.bytes = e.f.MemoryBytes()
		e.denseBytes = e.bytes
		if st := e.f.CompressionStats(); st != nil {
			e.denseBytes = st.DenseBytes
		}
	}
	s.m[handle] = e
	return nil
}

// Get resolves a handle.
func (s *factorStore) Get(handle string) (*factorEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[handle]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHandle, handle)
	}
	return e, nil
}

// Release frees a handle.
func (s *factorStore) Release(handle string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[handle]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownHandle, handle)
	}
	delete(s.m, handle)
	return nil
}

// Len returns the number of live handles.
func (s *factorStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// Stats samples the store for the metrics endpoint: live handle count, total
// resident factor-value bytes, and what those factors would cost dense (the
// two differ only when BLR-compressed factors are resident).
func (s *factorStore) Stats() (live int, resident, dense int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.m {
		resident += e.bytes
		dense += e.denseBytes
	}
	return len(s.m), resident, dense
}
