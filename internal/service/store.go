package service

import (
	"errors"
	"fmt"
	"sync"

	"github.com/pastix-go/pastix"
)

// Errors of the factor handle store.
var (
	// ErrUnknownHandle reports a solve or release against a handle that was
	// never issued or has been released.
	ErrUnknownHandle = errors.New("service: unknown factor handle")
	// ErrStoreFull reports that MaxFactors live handles exist; release one
	// before factorizing again.
	ErrStoreFull = errors.New("service: factor store full")
)

// factorEntry is one live factorization a client can solve against.
type factorEntry struct {
	handle      string
	fingerprint string
	n           int
	an          *pastix.Analysis
	f           *pastix.Factor
	batch       *batcher
}

// factorStore issues and resolves factor handles. Handles are opaque
// strings; each carries its own multi-RHS batcher.
type factorStore struct {
	mu  sync.Mutex
	max int
	seq uint64
	m   map[string]*factorEntry
}

func newFactorStore(max int) *factorStore {
	return &factorStore{max: max, m: make(map[string]*factorEntry)}
}

// Put registers a factorization and returns its handle.
func (s *factorStore) Put(e *factorEntry) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.m) >= s.max {
		return "", fmt.Errorf("%w: %d live handles", ErrStoreFull, len(s.m))
	}
	s.seq++
	e.handle = fmt.Sprintf("f-%06d-%.8s", s.seq, e.fingerprint)
	s.m[e.handle] = e
	return e.handle, nil
}

// Get resolves a handle.
func (s *factorStore) Get(handle string) (*factorEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[handle]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHandle, handle)
	}
	return e, nil
}

// Release frees a handle.
func (s *factorStore) Release(handle string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[handle]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownHandle, handle)
	}
	delete(s.m, handle)
	return nil
}

// Len returns the number of live handles.
func (s *factorStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}
