package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/pastix-go/pastix"
	"github.com/pastix-go/pastix/internal/gen"
)

func durableConfig(dir string) Config {
	return Config{Solver: pastix.Options{Processors: 2}, DataDir: dir}
}

func waitReady(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.WaitRecovered(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestDurableFactorizeSurvivesRestart is the core durability contract: a
// factorize acknowledged "durable": true survives a restart of the server
// (same data dir, fresh process state), and solves against the recovered
// handle are bitwise-identical to solves before the restart. The idempotency
// store is journaled too, so a retried factorize replays across the restart.
func TestDurableFactorizeSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	a := gen.Laplacian3D(5, 5, 5)
	mm := mmString(t, a)
	_, b := gen.RHSForSolution(a)

	s1, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	waitReady(t, s1)
	ts1 := httptest.NewServer(s1.Handler())

	var fr factorizeResponse
	if st := postJSON(t, ts1.URL+"/v1/factorize", matrixRequest{MatrixMarket: mm, IdempotencyKey: "dur-1"}, &fr); st != http.StatusOK {
		t.Fatalf("factorize status %d", st)
	}
	if !fr.Durable {
		t.Fatal("factorize on a durable server did not report durable")
	}
	var sr1 solveResponse
	if st := postJSON(t, ts1.URL+"/v1/solve", solveRequest{Handle: fr.Handle, B: b}, &sr1); st != http.StatusOK {
		t.Fatalf("solve status %d", st)
	}
	ts1.Close()
	s1.Close()

	// Restart: a fresh server over the same data dir replays the journal.
	s2, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	waitReady(t, s2)
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	if s2.Instance() == s1.Instance() {
		t.Fatal("restarted server kept the instance id")
	}
	var sr2 solveResponse
	if st := postJSON(t, ts2.URL+"/v1/solve", solveRequest{Handle: fr.Handle, B: b}, &sr2); st != http.StatusOK {
		t.Fatalf("solve against recovered handle: status %d", st)
	}
	if len(sr1.X) != len(sr2.X) {
		t.Fatal("solution length changed across restart")
	}
	for i := range sr1.X {
		if sr1.X[i] != sr2.X[i] {
			t.Fatalf("x[%d]: recovered solve %x differs from pre-restart %x", i, sr2.X[i], sr1.X[i])
		}
	}
	// The journaled idempotency entry replays across the restart.
	var fr2 factorizeResponse
	if st := postJSON(t, ts2.URL+"/v1/factorize", matrixRequest{MatrixMarket: mm, IdempotencyKey: "dur-1"}, &fr2); st != http.StatusOK {
		t.Fatalf("retried factorize status %d", st)
	}
	if !fr2.IdempotentReplay || fr2.Handle != fr.Handle {
		t.Fatalf("idempotency lost across restart: %+v", fr2)
	}
	// New handles issued after recovery never collide with recovered ones.
	var fr3 factorizeResponse
	if st := postJSON(t, ts2.URL+"/v1/factorize", matrixRequest{MatrixMarket: mm}, &fr3); st != http.StatusOK {
		t.Fatalf("fresh factorize status %d", st)
	}
	if fr3.Handle == fr.Handle {
		t.Fatal("fresh handle collided with a recovered one")
	}
}

// TestDurableReleaseSurvivesRestart: a released handle stays dead after
// restart (the tombstone is journaled).
func TestDurableReleaseSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	a := gen.Laplacian2D(9, 9)
	mm := mmString(t, a)

	s1, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	waitReady(t, s1)
	ts1 := httptest.NewServer(s1.Handler())
	var keep, drop factorizeResponse
	if st := postJSON(t, ts1.URL+"/v1/factorize", matrixRequest{MatrixMarket: mm}, &keep); st != http.StatusOK {
		t.Fatalf("factorize status %d", st)
	}
	if st := postJSON(t, ts1.URL+"/v1/factorize", matrixRequest{MatrixMarket: mm}, &drop); st != http.StatusOK {
		t.Fatalf("factorize status %d", st)
	}
	if st := postJSON(t, ts1.URL+"/v1/release", releaseRequest{Handle: drop.Handle}, nil); st != http.StatusOK {
		t.Fatal("release failed")
	}
	ts1.Close()
	s1.Close()

	s2, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	waitReady(t, s2)
	if _, err := s2.store.Get(keep.Handle); err != nil {
		t.Fatalf("kept handle lost: %v", err)
	}
	if _, err := s2.store.Get(drop.Handle); err == nil {
		t.Fatal("released handle resurrected by replay")
	}
}

// TestDurableBLRFactorSurvivesRestart: a BLR-compressed factor round-trips
// through the journal in compressed form.
func TestDurableBLRFactorSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	a := gen.Laplacian3D(7, 7, 7)
	mm := mmString(t, a)
	_, b := gen.RHSForSolution(a)

	s1, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	waitReady(t, s1)
	ts1 := httptest.NewServer(s1.Handler())
	var fr factorizeResponse
	req := matrixRequest{MatrixMarket: mm, BLR: &blrRequestOptions{Tol: 1e-8, MinBlockSize: 8}}
	if st := postJSON(t, ts1.URL+"/v1/factorize", req, &fr); st != http.StatusOK {
		t.Fatalf("factorize status %d", st)
	}
	if fr.Compression == nil {
		t.Fatal("BLR factorize reported no compression")
	}
	var sr1 solveResponse
	if st := postJSON(t, ts1.URL+"/v1/solve", solveRequest{Handle: fr.Handle, B: b}, &sr1); st != http.StatusOK {
		t.Fatalf("solve status %d", st)
	}
	ts1.Close()
	s1.Close()

	s2, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	waitReady(t, s2)
	e, err := s2.store.Get(fr.Handle)
	if err != nil {
		t.Fatal(err)
	}
	if !e.f.Compressed() {
		t.Fatal("recovered factor lost BLR compression")
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	var sr2 solveResponse
	if st := postJSON(t, ts2.URL+"/v1/solve", solveRequest{Handle: fr.Handle, B: b}, &sr2); st != http.StatusOK {
		t.Fatalf("recovered solve status %d", st)
	}
	for i := range sr1.X {
		if sr1.X[i] != sr2.X[i] {
			t.Fatalf("x[%d]: recovered BLR solve differs bitwise", i)
		}
	}
}

// TestReplicateTransfer: export from one node, import into another, solves
// bitwise-identical, and a retried import replays instead of duplicating.
func TestReplicateTransfer(t *testing.T) {
	src, err := New(Config{Solver: pastix.Options{Processors: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	dst, err := New(durableConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	waitReady(t, dst)
	tsSrc := httptest.NewServer(src.Handler())
	defer tsSrc.Close()
	tsDst := httptest.NewServer(dst.Handler())
	defer tsDst.Close()

	a := gen.Laplacian3D(5, 5, 5)
	mm := mmString(t, a)
	_, b := gen.RHSForSolution(a)
	var fr factorizeResponse
	if st := postJSON(t, tsSrc.URL+"/v1/factorize", matrixRequest{MatrixMarket: mm}, &fr); st != http.StatusOK {
		t.Fatalf("factorize status %d", st)
	}
	var srcSolve solveResponse
	if st := postJSON(t, tsSrc.URL+"/v1/solve", solveRequest{Handle: fr.Handle, B: b}, &srcSolve); st != http.StatusOK {
		t.Fatalf("source solve status %d", st)
	}

	// Export.
	buf, _ := json.Marshal(replicateRequest{Handle: fr.Handle})
	resp, err := http.Post(tsSrc.URL+"/v1/replicate", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	transfer, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("export status %d err %v", resp.StatusCode, err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("export content type %q", ct)
	}

	// Import twice: the second must replay, not duplicate.
	var imp1, imp2 factorizeResponse
	for i, into := range []*factorizeResponse{&imp1, &imp2} {
		resp, err := http.Post(tsDst.URL+"/v1/replicate", "application/octet-stream", bytes.NewReader(transfer))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Fatalf("import %d status %d: %s", i, resp.StatusCode, body)
		}
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if !imp1.Imported || !imp1.Durable {
		t.Fatalf("import response %+v, want imported+durable", imp1)
	}
	if !imp2.IdempotentReplay || imp2.Handle != imp1.Handle {
		t.Fatalf("retried import duplicated: %+v vs %+v", imp2, imp1)
	}
	if dst.store.Len() != 1 {
		t.Fatalf("%d live factors on destination, want 1", dst.store.Len())
	}

	var dstSolve solveResponse
	if st := postJSON(t, tsDst.URL+"/v1/solve", solveRequest{Handle: imp1.Handle, B: b}, &dstSolve); st != http.StatusOK {
		t.Fatalf("destination solve status %d", st)
	}
	for i := range srcSolve.X {
		if srcSolve.X[i] != dstSolve.X[i] {
			t.Fatalf("x[%d]: imported factor solves differently (bitwise)", i)
		}
	}

	// /v1/stat sees the imported handle.
	var stat statResponse
	if st := postJSON(t, tsDst.URL+"/v1/stat", statRequest{Handle: imp1.Handle}, &stat); st != http.StatusOK {
		t.Fatalf("stat status %d", st)
	}
	if stat.Fingerprint != fr.Fingerprint || !stat.Durable {
		t.Fatalf("stat %+v", stat)
	}
	if st := postJSON(t, tsDst.URL+"/v1/stat", statRequest{Handle: "f-000099-nope"}, nil); st != http.StatusNotFound {
		t.Fatalf("stat of unknown handle: status %d, want 404", st)
	}
}

// TestReplicateExportRefused: NoFactorExport turns export into a structured
// 403 the gateway recognizes as "fall back to re-factorize".
func TestReplicateExportRefused(t *testing.T) {
	s, err := New(Config{Solver: pastix.Options{Processors: 2}, NoFactorExport: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	a := gen.Laplacian2D(8, 8)
	var fr factorizeResponse
	if st := postJSON(t, ts.URL+"/v1/factorize", matrixRequest{MatrixMarket: mmString(t, a)}, &fr); st != http.StatusOK {
		t.Fatalf("factorize status %d", st)
	}
	var er errorResponse
	buf, _ := json.Marshal(replicateRequest{Handle: fr.Handle})
	resp, err := http.Post(ts.URL+"/v1/replicate", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("export status %d, want 403", resp.StatusCode)
	}
	if json.NewDecoder(resp.Body).Decode(&er); er.Code != "export_refused" {
		t.Fatalf("403 code %q, want export_refused", er.Code)
	}
}

// TestRecoveringReadyz: while the startup replay runs, /readyz reports
// "recovering" with 503 and requests are refused; after replay it flips to
// "ok" and the store serves.
func TestRecoveringReadyz(t *testing.T) {
	dir := t.TempDir()
	a := gen.Laplacian3D(6, 6, 6)
	mm := mmString(t, a)
	s1, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	waitReady(t, s1)
	ts1 := httptest.NewServer(s1.Handler())
	for i := 0; i < 3; i++ {
		if st := postJSON(t, ts1.URL+"/v1/factorize", matrixRequest{MatrixMarket: mm}, nil); st != http.StatusOK {
			t.Fatalf("factorize status %d", st)
		}
	}
	ts1.Close()
	s1.Close()

	s2, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	// Race the replay: whatever we observe must be consistent — either 503
	// "recovering" (refusing requests) or a fully recovered store.
	resp, err := http.Get(ts2.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var st ReadyState
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusServiceUnavailable:
		if st.Status != "recovering" {
			t.Fatalf("503 readyz status %q", st.Status)
		}
	case http.StatusOK:
		if st.Status != "ok" {
			t.Fatalf("200 readyz status %q", st.Status)
		}
	default:
		t.Fatalf("readyz status code %d", resp.StatusCode)
	}
	waitReady(t, s2)
	if s2.store.Len() != 3 {
		t.Fatalf("%d live factors after replay, want 3", s2.store.Len())
	}
	var rdy ReadyState
	resp2, err := http.Get(ts2.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&rdy); err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusOK || rdy.Status != "ok" || !rdy.Durable || rdy.Instance == "" {
		t.Fatalf("post-replay readyz %d %+v", resp2.StatusCode, rdy)
	}
}

// TestIdemStoreTTL: entries expire after the TTL; expired keys run fresh.
func TestIdemStoreTTL(t *testing.T) {
	st := newIdemStore(8, time.Minute)
	now := time.Unix(1000, 0)
	st.now = func() time.Time { return now }

	st.put("k1", "h1", factorizeResponse{Handle: "h1"})
	if _, ok := st.get("k1"); !ok {
		t.Fatal("fresh entry missing")
	}
	now = now.Add(59 * time.Second)
	if _, ok := st.get("k1"); !ok {
		t.Fatal("entry expired before the TTL")
	}
	now = now.Add(2 * time.Second)
	if _, ok := st.get("k1"); ok {
		t.Fatal("entry survived past the TTL")
	}
	if st.len() != 0 {
		t.Fatalf("expired entry still resident: len %d", st.len())
	}
	// put-side sweep: expired entries are collected without a get.
	st.put("k2", "h2", factorizeResponse{Handle: "h2"})
	now = now.Add(2 * time.Minute)
	st.put("k3", "h3", factorizeResponse{Handle: "h3"})
	if st.len() != 1 {
		t.Fatalf("put did not sweep expired entries: len %d", st.len())
	}
	if _, ok := st.get("k3"); !ok {
		t.Fatal("live entry swept")
	}
}
