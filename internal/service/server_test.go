package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/pastix-go/pastix"
	"github.com/pastix-go/pastix/internal/gen"
)

func mmString(t *testing.T, a *pastix.Matrix) string {
	t.Helper()
	var sb strings.Builder
	if err := pastix.WriteMatrixMarket(&sb, a, "service test"); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func postJSON(t *testing.T, url string, body, into any) (status int) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// End-to-end over real HTTP: analyze twice (second is a cache hit),
// factorize against the cached analysis, fire k concurrent solves that ride
// the batcher, and check every returned column is bit-identical to an
// independent SolveParallel call against the same factor — the PR's
// acceptance criterion.
func TestServerEndToEnd(t *testing.T) {
	s, err := New(Config{
		Solver:      pastix.Options{Processors: 3},
		BatchWindow: 300 * time.Millisecond,
		MaxBatch:    8,
		Workers:     8,
		QueueDepth:  32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	a := gen.Laplacian3D(6, 6, 6)
	mm := mmString(t, a)

	var ar analyzeResponse
	if st := postJSON(t, ts.URL+"/v1/analyze", matrixRequest{MatrixMarket: mm}, &ar); st != http.StatusOK {
		t.Fatalf("analyze status %d", st)
	}
	if ar.Cached {
		t.Fatal("first analyze reported cached=true")
	}
	if ar.N != a.N || ar.Fingerprint == "" || ar.Tasks <= 0 {
		t.Fatalf("bad analyze response: %+v", ar)
	}
	var ar2 analyzeResponse
	if st := postJSON(t, ts.URL+"/v1/analyze", matrixRequest{MatrixMarket: mm}, &ar2); st != http.StatusOK {
		t.Fatalf("second analyze status %d", st)
	}
	if !ar2.Cached {
		t.Fatal("second analyze for the same pattern was not a cache hit")
	}
	if ar2.Fingerprint != ar.Fingerprint {
		t.Fatalf("fingerprint changed: %s vs %s", ar.Fingerprint, ar2.Fingerprint)
	}
	if s.Metrics().CacheHits.Value() < 1 {
		t.Fatal("cache hit not counted")
	}

	var fr factorizeResponse
	if st := postJSON(t, ts.URL+"/v1/factorize", matrixRequest{MatrixMarket: mm}, &fr); st != http.StatusOK {
		t.Fatalf("factorize status %d", st)
	}
	if !fr.AnalysisCached {
		t.Fatal("factorize did not reuse the cached analysis")
	}
	if fr.Handle == "" {
		t.Fatal("empty factor handle")
	}

	// k concurrent solves against one handle; the 300ms window should coalesce
	// them into one panel.
	const k = 4
	n := a.N
	bs := make([][]float64, k)
	for i := range bs {
		bs[i] = make([]float64, n)
		for j := range bs[i] {
			bs[i][j] = math.Cos(float64(1+j*(i+2))) + float64(i)
		}
	}
	xs := make([][]float64, k)
	batched := make([]int, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var sr solveResponse
			if st := postJSON(t, ts.URL+"/v1/solve", solveRequest{Handle: fr.Handle, B: bs[i]}, &sr); st != http.StatusOK {
				t.Errorf("solve %d status %d", i, st)
				return
			}
			xs[i] = sr.X
			batched[i] = sr.Batched
		}(i)
	}
	wg.Wait()

	maxBatched := 0
	for _, b := range batched {
		if b > maxBatched {
			maxBatched = b
		}
	}
	if maxBatched < 2 {
		t.Fatalf("no coalescing observed: batch sizes %v", batched)
	}

	// Bit-identity: each batched column must equal an independent
	// single-RHS SolveParallel against the very same analysis and factor.
	e, err := s.store.Get(fr.Handle)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		want, err := e.an.SolveParallel(e.f, bs[i])
		if err != nil {
			t.Fatal(err)
		}
		if len(xs[i]) != n {
			t.Fatalf("solve %d returned %d values, want %d", i, len(xs[i]), n)
		}
		for j := range want {
			if xs[i][j] != want[j] {
				t.Fatalf("solve %d: x[%d] = %v, independent SolveParallel = %v (not bit-identical)",
					i, j, xs[i][j], want[j])
			}
		}
	}

	// Metrics scrape reflects the traffic.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text := readAll(t, resp)
	for _, want := range []string{
		"pastix_cache_hits_total",
		"pastix_cache_misses_total 1",
		"pastix_batches_total",
		"pastix_batched_rhs_total",
		"pastix_factors_live 1",
		`pastix_phase_latency_seconds_count{phase="solve"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if !metricAtLeast(t, text, "pastix_cache_hits_total", 1) {
		t.Errorf("pastix_cache_hits_total < 1 in:\n%s", text)
	}

	// Release the handle; further solves 404.
	if st := postJSON(t, ts.URL+"/v1/release", releaseRequest{Handle: fr.Handle}, nil); st != http.StatusOK {
		t.Fatalf("release status %d", st)
	}
	if st := postJSON(t, ts.URL+"/v1/solve", solveRequest{Handle: fr.Handle, B: bs[0]}, nil); st != http.StatusNotFound {
		t.Fatalf("solve after release: status %d, want 404", st)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		m, err := resp.Body.Read(buf)
		sb.Write(buf[:m])
		if err != nil {
			break
		}
	}
	return sb.String()
}

// metricAtLeast parses a single un-labelled counter line from Prometheus
// text and checks its value.
func metricAtLeast(t *testing.T, text, name string, min float64) bool {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line, name+" %g", &v); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v >= min
		}
	}
	return false
}

// A full admission queue sheds with 429 and counts the shed.
func TestServerAdmissionShed(t *testing.T) {
	s, err := New(Config{Solver: pastix.Options{Processors: 1}, QueueDepth: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the only queue slot so the next request sheds immediately.
	s.queue <- struct{}{}
	defer func() { <-s.queue }()

	mm := mmString(t, gen.Laplacian3D(3, 3, 3))
	if st := postJSON(t, ts.URL+"/v1/analyze", matrixRequest{MatrixMarket: mm}, nil); st != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", st)
	}
	if s.Metrics().Shed.Value() != 1 {
		t.Fatalf("shed counter %d, want 1", s.Metrics().Shed.Value())
	}
}

func TestServerRequestErrors(t *testing.T) {
	s, err := New(Config{Solver: pastix.Options{Processors: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Unknown handle → 404.
	if st := postJSON(t, ts.URL+"/v1/solve", solveRequest{Handle: "nope", B: []float64{1}}, nil); st != http.StatusNotFound {
		t.Fatalf("unknown handle: status %d, want 404", st)
	}
	// Unparsable matrix → 400.
	if st := postJSON(t, ts.URL+"/v1/analyze", matrixRequest{MatrixMarket: "not a matrix"}, nil); st != http.StatusBadRequest {
		t.Fatalf("bad matrix: status %d, want 400", st)
	}
	// Wrong RHS length → 400.
	mm := mmString(t, gen.Laplacian3D(3, 3, 3))
	var fr factorizeResponse
	if st := postJSON(t, ts.URL+"/v1/factorize", matrixRequest{MatrixMarket: mm}, &fr); st != http.StatusOK {
		t.Fatalf("factorize status %d", st)
	}
	if st := postJSON(t, ts.URL+"/v1/solve", solveRequest{Handle: fr.Handle, B: []float64{1, 2}}, nil); st != http.StatusBadRequest {
		t.Fatalf("short rhs: status %d, want 400", st)
	}
	if s.Metrics().RequestErrors.Value() < 3 {
		t.Fatalf("request errors %d, want ≥ 3", s.Metrics().RequestErrors.Value())
	}
}

// A client deadline too short for the analysis surfaces as 504 gateway
// timeout via the context-aware API.
func TestServerDeadline(t *testing.T) {
	s, err := New(Config{Solver: pastix.Options{Processors: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	mm := mmString(t, gen.Laplacian3D(16, 16, 16))
	st := postJSON(t, ts.URL+"/v1/analyze", matrixRequest{MatrixMarket: mm, DeadlineMS: 1}, nil)
	if st != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", st)
	}
}
