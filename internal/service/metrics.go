package service

import (
	"io"

	"github.com/pastix-go/pastix/internal/trace"
)

// Metrics is the service's observability surface, exported in the Prometheus
// text exposition format on GET /metrics. Counters and histograms are
// lock-free (internal/trace primitives); gauges are sampled at scrape time.
type Metrics struct {
	// Request counters per endpoint.
	AnalyzeRequests   trace.Counter
	FactorizeRequests trace.Counter
	SolveRequests     trace.Counter
	RequestErrors     trace.Counter

	// Analysis cache.
	CacheHits      trace.Counter
	CacheMisses    trace.Counter
	CacheCoalesced trace.Counter
	CacheEvictions trace.Counter

	// Multi-RHS batcher.
	Batches    trace.Counter
	BatchedRHS trace.Counter
	BatchSize  *trace.Hist

	// Admission control.
	Shed       trace.Counter
	QueueDepth trace.Gauge

	// Per-phase latency histograms (seconds). Analyze and Solve observe the
	// service-measured wall time of the phase; the factorization phase is fed
	// from the execution trace's Summary, which also supplies the runtime
	// traffic counters below.
	AnalyzeSeconds   *trace.Hist
	FactorizeSeconds *trace.Hist
	SolveSeconds     *trace.Hist

	// Traced factorization observables (trace.Summary → metrics adapter).
	FactorizeMakespan   *trace.Hist
	FactorizeModelError *trace.Hist
	RuntimeMessages     trace.Counter
	RuntimeBytes        trace.Counter

	// Numerical-robustness observables: static-pivot substitutions recorded
	// by factorizations, ε-escalation retries, solves answered in degraded
	// mode, and the refinement iterations those solves spent.
	PivotPerturbations trace.Counter
	PivotRetries       trace.Counter
	DegradedSolves     trace.Counter
	RefineIterations   trace.Counter

	// Durability: factor transfers served and adopted via /v1/replicate.
	ReplicateExports trace.Counter
	ReplicateImports trace.Counter
}

// NewMetrics returns a Metrics with the default bucket ladders.
func NewMetrics() *Metrics {
	return &Metrics{
		BatchSize:           trace.NewHist(trace.BatchBuckets()...),
		AnalyzeSeconds:      trace.NewHist(trace.LatencyBuckets()...),
		FactorizeSeconds:    trace.NewHist(trace.LatencyBuckets()...),
		SolveSeconds:        trace.NewHist(trace.LatencyBuckets()...),
		FactorizeMakespan:   trace.NewHist(trace.LatencyBuckets()...),
		FactorizeModelError: trace.NewHist(0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5),
	}
}

// metricsSample carries the state gauges the caller samples at scrape time:
// factorBytes is the resident factor-value storage across live handles;
// compressionRatio is dense-equivalent bytes over resident bytes (1.0 when
// nothing resident is BLR-compressed, and also when no factors are live);
// walBytes and recoverySeconds are zero on a non-durable server.
type metricsSample struct {
	cacheEntries     int
	factorsLive      int
	factorBytes      int64
	compressionRatio float64
	walBytes         int64
	recoverySeconds  float64
}

// write emits the full exposition with the scrape-time sample.
func (m *Metrics) write(w io.Writer, s metricsSample) error {
	cacheEntries, factorsLive, factorBytes, compressionRatio :=
		s.cacheEntries, s.factorsLive, s.factorBytes, s.compressionRatio
	counters := []struct {
		name, help string
		c          *trace.Counter
	}{
		{"pastix_requests_analyze_total", "analyze requests accepted", &m.AnalyzeRequests},
		{"pastix_requests_factorize_total", "factorize requests accepted", &m.FactorizeRequests},
		{"pastix_requests_solve_total", "solve requests accepted", &m.SolveRequests},
		{"pastix_request_errors_total", "requests that returned an error", &m.RequestErrors},
		{"pastix_cache_hits_total", "analysis cache hits (pattern already resident)", &m.CacheHits},
		{"pastix_cache_misses_total", "analysis cache misses (led a fresh analysis)", &m.CacheMisses},
		{"pastix_cache_coalesced_total", "requests that joined an in-flight analysis (single-flight)", &m.CacheCoalesced},
		{"pastix_cache_evictions_total", "analyses evicted by the LRU", &m.CacheEvictions},
		{"pastix_batches_total", "batched panel solves executed", &m.Batches},
		{"pastix_batched_rhs_total", "right-hand sides carried by batched solves", &m.BatchedRHS},
		{"pastix_shed_total", "requests shed by admission control (429)", &m.Shed},
		{"pastix_runtime_messages_total", "messages sent by traced factorizations", &m.RuntimeMessages},
		{"pastix_runtime_bytes_total", "bytes sent by traced factorizations", &m.RuntimeBytes},
		{"pastix_pivot_perturbations_total", "static-pivot substitutions recorded by factorizations", &m.PivotPerturbations},
		{"pastix_pivot_retries_total", "epsilon-escalation retries performed by robust factorizations", &m.PivotRetries},
		{"pastix_degraded_solves_total", "solves answered in degraded mode (perturbed factor + refinement)", &m.DegradedSolves},
		{"pastix_refine_iterations_total", "iterative-refinement sweeps spent by degraded solves", &m.RefineIterations},
		{"pastix_replicate_exports_total", "factor transfers exported via /v1/replicate", &m.ReplicateExports},
		{"pastix_replicate_imports_total", "factor transfers imported via /v1/replicate", &m.ReplicateImports},
	}
	for _, c := range counters {
		if err := trace.PromHeader(w, c.name, "counter", c.help); err != nil {
			return err
		}
		if err := trace.PromValue(w, c.name, c.c.Value()); err != nil {
			return err
		}
	}
	gauges := []struct {
		name, help string
		v          int64
	}{
		{"pastix_queue_depth", "admitted requests currently queued or executing", m.QueueDepth.Value()},
		{"pastix_cache_entries", "analyses resident in the cache", int64(cacheEntries)},
		{"pastix_factors_live", "live factor handles", int64(factorsLive)},
		{"pastix_factor_store_bytes", "resident factor-value bytes across live handles (compressed size for BLR factors)", factorBytes},
		{"pastix_store_wal_bytes", "bytes in the durable store's write-ahead log (0 on a non-durable server)", s.walBytes},
	}
	for _, g := range gauges {
		if err := trace.PromHeader(w, g.name, "gauge", g.help); err != nil {
			return err
		}
		if err := trace.PromValue(w, g.name, g.v); err != nil {
			return err
		}
	}
	if err := trace.PromHeader(w, "pastix_factor_store_compression_ratio",
		"gauge", "dense-equivalent bytes over resident bytes for live factors (1.0 = fully dense)"); err != nil {
		return err
	}
	if err := trace.PromFloat(w, "pastix_factor_store_compression_ratio", compressionRatio); err != nil {
		return err
	}
	if err := trace.PromHeader(w, "pastix_store_recovery_seconds",
		"gauge", "wall time of the startup journal replay (0 on a non-durable server or before replay finishes)"); err != nil {
		return err
	}
	if err := trace.PromFloat(w, "pastix_store_recovery_seconds", s.recoverySeconds); err != nil {
		return err
	}
	hists := []struct {
		name, help, labels string
		h                  *trace.Hist
	}{
		{"pastix_batch_size_rhs", "right-hand sides per batched solve", "", m.BatchSize},
		{"pastix_phase_latency_seconds", "per-phase latency", `phase="analyze"`, m.AnalyzeSeconds},
		{"pastix_phase_latency_seconds", "", `phase="factorize"`, m.FactorizeSeconds},
		{"pastix_phase_latency_seconds", "", `phase="solve"`, m.SolveSeconds},
		{"pastix_factorize_makespan_seconds", "traced factorization makespan (trace summary)", "", m.FactorizeMakespan},
		{"pastix_factorize_model_error", "duration-weighted |model error| of traced factorizations", "", m.FactorizeModelError},
	}
	seen := map[string]bool{}
	for _, h := range hists {
		if !seen[h.name] {
			if err := trace.PromHeader(w, h.name, "histogram", h.help); err != nil {
				return err
			}
			seen[h.name] = true
		}
		if err := h.h.WriteProm(w, h.name, h.labels); err != nil {
			return err
		}
	}
	return nil
}
