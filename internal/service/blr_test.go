package service

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/pastix-go/pastix"
	"github.com/pastix-go/pastix/internal/gen"
)

// TestServerBLRFactorize exercises the compressed-factor serving path end to
// end: a factorize request carrying a blr block returns compression
// accounting, solves against the compressed handle recover full accuracy
// under refinement, the mpsim engine is refused, and the /metrics gauges
// report the store's resident bytes and compression ratio.
func TestServerBLRFactorize(t *testing.T) {
	s, err := New(Config{
		Solver:     pastix.Options{Processors: 3},
		Workers:    4,
		QueueDepth: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	a := gen.Laplacian3D(9, 9, 9)
	mm := mmString(t, a)

	var fr factorizeResponse
	if st := postJSON(t, ts.URL+"/v1/factorize", matrixRequest{
		MatrixMarket: mm,
		BLR:          &blrRequestOptions{Tol: 1e-8, MinBlockSize: 8},
	}, &fr); st != http.StatusOK {
		t.Fatalf("factorize status %d", st)
	}
	if fr.Compression == nil {
		t.Fatal("blr factorize response carries no compression stats")
	}
	if fr.Compression.CompressedBytes >= fr.Compression.DenseBytes ||
		fr.Compression.Ratio <= 1 || fr.Compression.BlocksCompressed == 0 {
		t.Fatalf("implausible compression stats: %+v", fr.Compression)
	}

	// A refined solve against the compressed handle reaches the dense-path
	// solution despite the lossy storage.
	x, b := gen.RHSForSolution(a)
	var sr solveResponse
	if st := postJSON(t, ts.URL+"/v1/solve", solveRequest{
		Handle:  fr.Handle,
		B:       b,
		Options: &solveRequestOptions{Refine: &refineRequestOptions{}},
	}, &sr); st != http.StatusOK {
		t.Fatalf("solve status %d", st)
	}
	if sr.BackwardError > 1e-10 {
		t.Errorf("refined backward error %g", sr.BackwardError)
	}
	for i := range x {
		if math.Abs(sr.X[i]-x[i]) > 1e-6*(1+math.Abs(x[i])) {
			t.Fatalf("x[%d] = %g, want %g", i, sr.X[i], x[i])
		}
	}

	// The message-passing engine needs dense factors: pinning it against a
	// compressed handle is a client error.
	var er errorResponse
	if st := postJSON(t, ts.URL+"/v1/solve", solveRequest{
		Handle:  fr.Handle,
		B:       b,
		Options: &solveRequestOptions{Runtime: "mpsim"},
	}, &er); st != http.StatusBadRequest {
		t.Fatalf("mpsim solve on compressed handle: status %d, body %+v", st, er)
	}

	// The metrics gauges sample the store: resident bytes equal the compressed
	// size and the ratio matches the factorize response.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	wantBytes := "pastix_factor_store_bytes " + strconv.FormatInt(fr.Compression.CompressedBytes, 10)
	if !strings.Contains(text, wantBytes) {
		t.Errorf("metrics missing %q", wantBytes)
	}
	if !strings.Contains(text, "pastix_factor_store_compression_ratio ") {
		t.Error("metrics missing pastix_factor_store_compression_ratio")
	}
	for _, line := range strings.Split(text, "\n") {
		if v, ok := strings.CutPrefix(line, "pastix_factor_store_compression_ratio "); ok {
			got, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				t.Fatalf("parse ratio %q: %v", v, err)
			}
			if math.Abs(got-fr.Compression.Ratio) > 1e-9*fr.Compression.Ratio {
				t.Errorf("metrics ratio %g, factorize reported %g", got, fr.Compression.Ratio)
			}
		}
	}

	// Release the handle: the gauges fall back to the empty-store baseline.
	if st := postJSON(t, ts.URL+"/v1/release", releaseRequest{Handle: fr.Handle}, nil); st != http.StatusOK {
		t.Fatalf("release status %d", st)
	}
	resp2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body2, err := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body2), "pastix_factor_store_bytes 0") {
		t.Error("released store still reports resident factor bytes")
	}
	if !strings.Contains(string(body2), "pastix_factor_store_compression_ratio 1") {
		t.Error("empty store does not report the neutral ratio 1")
	}
}

// TestServerBLRValidation pins the request-level rejections: a blr block with
// a bad (or missing) tolerance is a 400, and a server whose solver options
// conflict with compression refuses the request rather than corrupting the
// handle's solve contract.
func TestServerBLRValidation(t *testing.T) {
	s, err := New(Config{Solver: pastix.Options{Processors: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	mm := mmString(t, gen.Laplacian3D(5, 5, 5))

	for _, blr := range []*blrRequestOptions{
		{Tol: 0},                      // present but disabled: client error, not a silent no-op
		{Tol: -1e-8},                  // negative
		{Tol: 1},                      // ≥ 1 keeps nothing
		{Tol: 1e-8, MinBlockSize: -4}, // negative admission floor
	} {
		var er errorResponse
		if st := postJSON(t, ts.URL+"/v1/factorize", matrixRequest{MatrixMarket: mm, BLR: blr}, &er); st != http.StatusBadRequest {
			t.Errorf("blr %+v: status %d, want 400 (%+v)", blr, st, er)
		}
	}

	// A server pinned to the message-passing runtime cannot honor blr: its
	// solves read dense factors.
	sm, err := New(Config{Solver: pastix.Options{Processors: 2, Runtime: pastix.RuntimeMPSim}})
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Close()
	tsm := httptest.NewServer(sm.Handler())
	defer tsm.Close()
	var er errorResponse
	if st := postJSON(t, tsm.URL+"/v1/factorize", matrixRequest{
		MatrixMarket: mm, BLR: &blrRequestOptions{Tol: 1e-8},
	}, &er); st != http.StatusBadRequest {
		t.Errorf("mpsim-pinned server accepted blr: status %d (%+v)", st, er)
	}
}

// TestServerBLRBatchedSolves drives plain (options-free) solve requests
// against a compressed handle: they ride the multi-RHS batcher and the
// level-set panel engine on compressed kernels, matching an independent
// library-level compressed solve bit for bit.
func TestServerBLRBatchedSolves(t *testing.T) {
	s, err := New(Config{
		Solver:      pastix.Options{Processors: 3},
		BatchWindow: 200 * time.Millisecond,
		MaxBatch:    4,
		Workers:     4,
		QueueDepth:  16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	a := gen.Laplacian3D(7, 7, 7)
	mm := mmString(t, a)
	var fr factorizeResponse
	if st := postJSON(t, ts.URL+"/v1/factorize", matrixRequest{
		MatrixMarket: mm,
		BLR:          &blrRequestOptions{Tol: 1e-10, MinBlockSize: 8},
	}, &fr); st != http.StatusOK {
		t.Fatalf("factorize status %d", st)
	}
	if fr.Compression == nil {
		t.Fatal("no compression stats")
	}

	// Independent reference: the same compressed factor solved through the
	// library (sequential compressed path — the level-set engine is per-column
	// bit-identical to it).
	an, err := pastix.Analyze(a, pastix.Options{
		Processors: 3,
		BLR:        pastix.BLROptions{Tol: 1e-10, MinBlockSize: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := an.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.N)
	for j := range b {
		b[j] = math.Sin(float64(j + 1))
	}
	ref, err := an.Solve(f, b)
	if err != nil {
		t.Fatal(err)
	}
	var sr solveResponse
	if st := postJSON(t, ts.URL+"/v1/solve", solveRequest{Handle: fr.Handle, B: b}, &sr); st != http.StatusOK {
		t.Fatalf("solve status %d", st)
	}
	for i := range ref {
		if sr.X[i] != ref[i] {
			t.Fatalf("x[%d] = %x, library reference %x", i, sr.X[i], ref[i])
		}
	}
}
