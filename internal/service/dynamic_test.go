package service

import (
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/pastix-go/pastix"
	"github.com/pastix-go/pastix/internal/gen"
)

// TestServerDynamicRuntime runs the full analyze → factorize → solve HTTP
// round trip with the work-stealing runtime configured as the service's
// solver backend, checking that solves come back with the usual accuracy.
func TestServerDynamicRuntime(t *testing.T) {
	s, err := New(Config{
		Solver:  pastix.Options{Processors: 4, Runtime: pastix.RuntimeDynamic},
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	a := gen.Laplacian2D(13, 13)
	mm := mmString(t, a)

	var fr factorizeResponse
	if st := postJSON(t, ts.URL+"/v1/factorize", matrixRequest{MatrixMarket: mm}, &fr); st != http.StatusOK {
		t.Fatalf("factorize status %d", st)
	}
	if fr.Handle == "" {
		t.Fatal("empty factor handle")
	}

	x, b := gen.RHSForSolution(a)
	var sr solveResponse
	if st := postJSON(t, ts.URL+"/v1/solve", solveRequest{Handle: fr.Handle, B: b}, &sr); st != http.StatusOK {
		t.Fatalf("solve status %d", st)
	}
	for i := range x {
		if math.Abs(sr.X[i]-x[i]) > 1e-9 {
			t.Fatalf("x[%d]=%g want %g", i, sr.X[i], x[i])
		}
	}
}

// TestConfigRejectsDynamicWithFaults pins the config-level chaos interplay:
// a service configured with both fault injection and the dynamic runtime
// must fail Validate with the solver's typed options error.
func TestConfigRejectsDynamicWithFaults(t *testing.T) {
	cfg := Config{Solver: pastix.Options{
		Processors: 2,
		Runtime:    pastix.RuntimeDynamic,
		Faults:     &pastix.FaultPlan{Drop: 0.1},
	}}
	err := cfg.Validate()
	if err == nil {
		t.Fatal("dynamic runtime + active faults passed config validation")
	}
	if !errors.Is(err, pastix.ErrBadOptions) {
		t.Fatalf("error %v does not wrap pastix.ErrBadOptions", err)
	}
}
