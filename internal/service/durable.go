package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"github.com/pastix-go/pastix"
	"github.com/pastix-go/pastix/internal/store"
)

// This file is the durability layer of the server: the journal wiring
// (persist-before-ack, startup replay) and the backend-to-backend transfer
// surface (/v1/replicate, /v1/stat) the gateway's anti-entropy repair uses.
//
// The durability contract: a factorize response carrying "durable": true was
// journaled — matrix values, factor payload, idempotency key and the response
// itself — with an fsync'd WAL append before the handle was acknowledged.
// Startup replays the journal before admitting requests: analyses are re-run
// (the deterministic analysis pipeline makes the analysis a pure function of
// the journaled matrix, so only bytes that cannot be recomputed bitwise are
// stored), factor payloads are adopted verbatim, and idempotency entries are
// rebuilt from the journaled responses. A restarted node therefore answers
// solves against recovered handles bitwise-identically to its previous life.

// errRecovering reports a request arriving while the startup journal replay
// is still running (HTTP 503; /readyz says "recovering").
var errRecovering = errors.New("service: journal replay in progress")

// errRecoveryFailed reports a request arriving after the startup replay
// failed; the node is fail-stopped (HTTP 503, /readyz "recovery_failed")
// rather than serving from a store it knows is incomplete.
var errRecoveryFailed = errors.New("service: journal recovery failed")

// newInstanceID returns the random per-process identity exposed on /readyz.
// The gateway uses it to detect restarts: same address, new instance means
// the in-memory state (and any non-durable handles) is gone.
func newInstanceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("t-%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// openJournal opens the durable store and starts the asynchronous replay.
// Byte-level corruption surfaces here, synchronously, so a corrupt journal
// fails startup with a typed error instead of a half-recovered server.
func (s *Server) openJournal() error {
	if s.cfg.DataDir == "" {
		close(s.recoveryDone)
		return nil
	}
	j, rec, err := store.Open(s.cfg.DataDir, store.Options{SnapshotEvery: s.cfg.SnapshotEvery})
	if err != nil {
		return err
	}
	s.journal = j
	s.recovering.Store(true)
	go s.replay(rec)
	return nil
}

// replay rebuilds the in-memory state from the recovered journal records:
// analyses are recomputed to warm the cache, factors are restored under
// their original handles, idempotency entries are rebuilt. The HTTP listener
// is already up while this runs — /readyz reports "recovering" and admission
// refuses with 503 — so orchestrators see a live-but-not-ready node instead
// of a connection error. A replay failure fail-stops the node.
func (s *Server) replay(rec *store.Recovered) {
	t0 := time.Now()
	var err error
	for _, ar := range rec.Analyses {
		if _, _, aerr := s.cache.Get(s.baseCtx, ar.Fingerprint, ar.Matrix); aerr != nil {
			err = fmt.Errorf("replaying analysis %q: %w", ar.Fingerprint, aerr)
			break
		}
	}
	if err == nil {
		for _, fr := range rec.Factors {
			if ferr := s.restoreFactorRecord(fr); ferr != nil {
				err = fmt.Errorf("replaying factor %q: %w", fr.Handle, ferr)
				break
			}
		}
	}
	atomic.StoreUint64(&s.recoverySecs, math.Float64bits(time.Since(t0).Seconds()))
	if err != nil {
		msg := err.Error()
		s.recoveryErr.Store(&msg)
	}
	s.recovering.Store(false)
	close(s.recoveryDone)
}

// WaitRecovered blocks until the startup replay has finished (successfully
// or not) or ctx expires. Tests and embedders use it; HTTP clients poll
// /readyz instead.
func (s *Server) WaitRecovered(ctx context.Context) error {
	select {
	case <-s.recoveryDone:
		if msg := s.recoveryErr.Load(); msg != nil {
			return fmt.Errorf("%w: %s", errRecoveryFailed, *msg)
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// restoreFactorRecord rebuilds one live handle from its journal record. The
// analysis is recomputed from the journaled matrix (deterministic), the
// factor payload is adopted verbatim, and the solve path is prewarmed exactly
// as the original factorize did.
func (s *Server) restoreFactorRecord(fr *store.FactorRecord) error {
	a := fr.Matrix
	if fp := pastix.PatternFingerprint(a); fp != fr.Fingerprint {
		return fmt.Errorf("journaled fingerprint %q does not match matrix (%q)", fr.Fingerprint, fp)
	}
	an, _, err := s.cache.Get(s.baseCtx, fr.Fingerprint, a)
	if err != nil {
		return err
	}
	f, err := an.RestoreFactor(a, fr.Payload)
	if err != nil {
		return err
	}
	if _, err := an.PrepareSolve(f); err != nil {
		return err
	}
	e := &factorEntry{fingerprint: fr.Fingerprint, n: a.N, an: an, f: f, src: a, idemKey: fr.IdemKey, durable: true}
	e.batch = newBatcher(s.cfg.BatchWindow, s.cfg.MaxBatch, func(reqs []*solveReq) { s.runBatch(e, reqs) })
	if err := s.store.PutRestored(e, fr.Handle); err != nil {
		return err
	}
	if fr.IdemKey != "" && len(fr.Response) > 0 {
		var resp factorizeResponse
		if json.Unmarshal(fr.Response, &resp) == nil {
			s.idem.put(fr.IdemKey, fr.Handle, resp)
		}
	}
	return nil
}

// journalFactor persists one acknowledged factorization. Called between
// store.Put and the response write: an append error un-puts the handle and
// fails the request, so "durable": true is never a lie.
func (s *Server) journalFactor(handle, fingerprint, idemKey string, a *pastix.Matrix, f *pastix.Factor, respJSON []byte) error {
	p, err := f.ExportPayload()
	if err != nil {
		return err
	}
	return s.journal.AppendFactor(&store.FactorRecord{
		Handle:      handle,
		Fingerprint: fingerprint,
		IdemKey:     idemKey,
		Matrix:      a,
		Payload:     p,
		Response:    respJSON,
	})
}

// --- backend-to-backend transfer: /v1/replicate, /v1/stat ---

// statRequest/statResponse are the /v1/stat bodies: the gateway's
// anti-entropy repair asks a backend whether it still holds a handle before
// deciding the replica is lost.
type statRequest struct {
	Handle string `json:"handle"`
}

type statResponse struct {
	Handle      string `json:"handle"`
	Fingerprint string `json:"fingerprint"`
	N           int    `json:"n"`
	Durable     bool   `json:"durable"`
	Compressed  bool   `json:"compressed"`
}

func (s *Server) handleStat(w http.ResponseWriter, r *http.Request) {
	if err := s.durabilityGate(); err != nil {
		s.writeErr(w, err)
		return
	}
	var req statRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	e, err := s.store.Get(req.Handle)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, statResponse{
		Handle:      e.handle,
		Fingerprint: e.fingerprint,
		N:           e.n,
		Durable:     e.durable,
		Compressed:  e.f.Compressed(),
	})
}

// replicateRequest asks for a factor export (JSON side of /v1/replicate).
type replicateRequest struct {
	Handle string `json:"handle"`
}

// handleReplicate is the transfer endpoint, dispatched on content type:
//
//   - application/json {"handle": ...} exports the factor behind handle as a
//     single CRC-sealed binary record (matrix values + factor payload) with
//     content type application/octet-stream — unless the node is configured
//     with NoFactorExport, which refuses with 403/"export_refused" and pushes
//     the gateway to its re-factorize fallback;
//   - application/octet-stream imports such a record: the matrix is
//     re-analyzed (cache-warmed), the payload adopted verbatim, the solve
//     path prewarmed, a fresh local handle issued and journaled. Solves
//     against the imported handle are bitwise-identical to the source node's.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/octet-stream") {
		s.handleReplicateImport(w, r)
		return
	}
	s.handleReplicateExport(w, r)
}

func (s *Server) handleReplicateExport(w http.ResponseWriter, r *http.Request) {
	if err := s.durabilityGate(); err != nil {
		s.writeErr(w, err)
		return
	}
	var req replicateRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if s.cfg.NoFactorExport {
		s.metrics.RequestErrors.Inc()
		s.writeJSON(w, http.StatusForbidden, errorResponse{
			Error: "factor export refused by configuration",
			Code:  "export_refused",
		})
		return
	}
	e, err := s.store.Get(req.Handle)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	if e.src == nil {
		s.writeErr(w, fmt.Errorf("%w: %q has no source matrix recorded", ErrUnknownHandle, req.Handle))
		return
	}
	p, err := e.f.ExportPayload()
	if err != nil {
		s.writeErr(w, err)
		return
	}
	s.metrics.ReplicateExports.Inc()
	b := store.MarshalFactorRecord(&store.FactorRecord{
		Handle:      e.handle,
		Fingerprint: e.fingerprint,
		IdemKey:     e.idemKey,
		Matrix:      e.src,
		Payload:     p,
	})
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
}

func (s *Server) handleReplicateImport(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{
				Error: fmt.Sprintf("transfer exceeds %d bytes", mbe.Limit),
				Code:  "body_too_large",
			})
		} else {
			s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "reading transfer: " + err.Error()})
		}
		s.metrics.RequestErrors.Inc()
		return
	}
	rec, err := store.UnmarshalFactorRecord(body)
	if err != nil {
		s.metrics.RequestErrors.Inc()
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "transfer record: " + err.Error(), Code: "bad_transfer"})
		return
	}
	a := rec.Matrix
	if fp := pastix.PatternFingerprint(a); fp != rec.Fingerprint {
		s.metrics.RequestErrors.Inc()
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "transfer fingerprint does not match matrix", Code: "bad_transfer"})
		return
	}
	// An import retried by the repair loop must not mint a second copy: the
	// transfer's idempotency key (the gateway derives one from the source
	// replica) replays the first import's response.
	idemKey := rec.IdemKey
	if idemKey == "" {
		idemKey = "replicate-" + rec.Fingerprint + "-" + rec.Handle
	}
	if resp, ok := s.idem.get(idemKey); ok {
		resp.IdempotentReplay = true
		s.writeJSON(w, http.StatusOK, resp)
		return
	}
	ctx, cancel := s.reqContext(r, 0)
	defer cancel()
	release, err := s.admit(ctx)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	defer release()
	t0 := time.Now()
	an, hit, err := s.cache.Get(ctx, rec.Fingerprint, a)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	f, err := an.RestoreFactor(a, rec.Payload)
	if err != nil {
		s.metrics.RequestErrors.Inc()
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "restoring transfer: " + err.Error(), Code: "bad_transfer"})
		return
	}
	plan, err := an.PrepareSolve(f)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	e := &factorEntry{fingerprint: rec.Fingerprint, n: a.N, an: an, f: f, src: a, idemKey: idemKey}
	e.batch = newBatcher(s.cfg.BatchWindow, s.cfg.MaxBatch, func(reqs []*solveReq) { s.runBatch(e, reqs) })
	handle, err := s.store.Put(e)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	resp := factorizeResponse{
		Handle:         handle,
		Fingerprint:    rec.Fingerprint,
		AnalysisCached: hit,
		FactorizeMS:    float64(time.Since(t0)) / float64(time.Millisecond),
		SolvePlan:      &plan,
		Imported:       true,
		Compression:    f.CompressionStats(),
	}
	if rep := f.Perturbations(); rep != nil && len(rep.Perturbed) > 0 {
		resp.PerturbedColumns = rep.Columns()
		resp.PivotEpsilon = rep.Epsilon
		resp.PivotGrowth = rep.PivotGrowth
	}
	if s.journal != nil {
		respJSON, _ := json.Marshal(resp)
		if err := s.journalFactor(handle, rec.Fingerprint, idemKey, a, f, respJSON); err != nil {
			_ = s.store.Release(handle)
			s.writeErr(w, err)
			return
		}
		e.durable = true
		resp.Durable = true
	}
	s.metrics.ReplicateImports.Inc()
	s.idem.put(idemKey, handle, resp)
	s.writeJSON(w, http.StatusOK, resp)
}

// durabilityGate refuses requests while the journal replay is running or has
// failed. Admission (admitQueue) applies the same gate; this covers the
// endpoints that bypass admission.
func (s *Server) durabilityGate() error {
	if s.recovering.Load() {
		return errRecovering
	}
	if msg := s.recoveryErr.Load(); msg != nil {
		return fmt.Errorf("%w: %s", errRecoveryFailed, *msg)
	}
	return nil
}
