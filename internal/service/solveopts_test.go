package service

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/pastix-go/pastix"
	"github.com/pastix-go/pastix/internal/gen"
)

// newSolveOptsServer boots a server and factorizes a Poisson problem,
// returning the test server URL and the factor handle.
func newSolveOptsServer(t *testing.T, opts pastix.Options) (*Server, *httptest.Server, string, *pastix.Matrix) {
	t.Helper()
	s, err := New(Config{
		Solver:      opts,
		BatchWindow: time.Millisecond,
		MaxBatch:    8,
		Workers:     4,
		QueueDepth:  32,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	a := gen.Laplacian2D(14, 14)
	var fr factorizeResponse
	if st := postJSON(t, ts.URL+"/v1/factorize", matrixRequest{MatrixMarket: mmString(t, a)}, &fr); st != http.StatusOK {
		t.Fatalf("factorize status %d", st)
	}
	if fr.SolvePlan == nil || fr.SolvePlan.Cells == 0 {
		t.Fatalf("factorize did not prewarm a solve plan: %+v", fr.SolvePlan)
	}
	return s, ts, fr.Handle, a
}

// TestServerSolveOptions exercises the options-bearing /v1/solve body: a
// panel request with refinement and a pinned runtime, checked against the
// reference sequential solve of each column.
func TestServerSolveOptions(t *testing.T) {
	_, ts, handle, a := newSolveOptsServer(t, pastix.Options{Processors: 3})
	an, err := pastix.Analyze(a, pastix.Options{Processors: 3})
	if err != nil {
		t.Fatal(err)
	}
	f, err := an.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	_, b := gen.RHSForSolution(a)
	n := a.N
	const nrhs = 3
	panel := make([]float64, n*nrhs)
	for r := 0; r < nrhs; r++ {
		for i := 0; i < n; i++ {
			panel[i+r*n] = b[i] * float64(r+1)
		}
	}

	var sr solveResponse
	st := postJSON(t, ts.URL+"/v1/solve", solveRequest{
		Handle:  handle,
		B:       panel,
		Options: &solveRequestOptions{NRHS: nrhs, Refine: &refineRequestOptions{}},
	}, &sr)
	if st != http.StatusOK {
		t.Fatalf("solve status %d", st)
	}
	if sr.NRHS != nrhs || len(sr.X) != n*nrhs {
		t.Fatalf("panel response nrhs=%d len(x)=%d", sr.NRHS, len(sr.X))
	}
	if sr.Plan == nil || sr.Plan.Cells == 0 {
		t.Fatalf("level-set solve reported no plan: %+v", sr.Plan)
	}
	for r := 0; r < nrhs; r++ {
		col := sr.X[r*n : (r+1)*n]
		if res := pastix.Residual(a, col, panel[r*n:(r+1)*n]); res > 1e-10 {
			t.Fatalf("column %d residual %g", r, res)
		}
	}

	// Pinning the sequential engine must reproduce the library's Solve bit
	// for bit (no plan reported — the level-set engine did not run).
	ref, err := an.Solve(f, b)
	if err != nil {
		t.Fatal(err)
	}
	var seq solveResponse
	if st := postJSON(t, ts.URL+"/v1/solve", solveRequest{
		Handle:  handle,
		B:       b,
		Options: &solveRequestOptions{Runtime: "seq"},
	}, &seq); st != http.StatusOK {
		t.Fatalf("seq solve status %d", st)
	}
	if seq.Plan != nil {
		t.Fatalf("sequential solve reported a plan: %+v", seq.Plan)
	}
	for i := range ref {
		if seq.X[i] != ref[i] {
			t.Fatalf("seq x[%d] = %x, library %x", i, seq.X[i], ref[i])
		}
	}

	// Old-style body (no options) still works and reports the batch plan.
	var legacy solveResponse
	if st := postJSON(t, ts.URL+"/v1/solve", solveRequest{Handle: handle, B: b}, &legacy); st != http.StatusOK {
		t.Fatalf("legacy solve status %d", st)
	}
	if len(legacy.X) != n || legacy.Batched < 1 {
		t.Fatalf("legacy response: len(x)=%d batched=%d", len(legacy.X), legacy.Batched)
	}
	for i := range ref {
		if legacy.X[i] != ref[i] {
			t.Fatalf("legacy x[%d] = %x, library %x (level-set batch must match sequential)", i, legacy.X[i], ref[i])
		}
	}
	if legacy.Plan == nil || legacy.Plan.Cells == 0 {
		t.Fatalf("batched solve reported no plan: %+v", legacy.Plan)
	}
}

// TestServerSolveOptionsErrors pins the error mapping of the options path.
func TestServerSolveOptionsErrors(t *testing.T) {
	_, ts, handle, a := newSolveOptsServer(t, pastix.Options{Processors: 2})
	_, b := gen.RHSForSolution(a)
	var er errorResponse
	if st := postJSON(t, ts.URL+"/v1/solve", solveRequest{
		Handle: handle, B: b,
		Options: &solveRequestOptions{Runtime: "warp-drive"},
	}, &er); st != http.StatusBadRequest {
		t.Fatalf("unknown runtime: status %d (%+v)", st, er)
	}
	if st := postJSON(t, ts.URL+"/v1/solve", solveRequest{
		Handle: handle, B: b,
		Options: &solveRequestOptions{NRHS: 2},
	}, &er); st != http.StatusBadRequest {
		t.Fatalf("short panel: status %d (%+v)", st, er)
	}
	if st := postJSON(t, ts.URL+"/v1/solve", solveRequest{
		Handle: handle, B: b,
		Options: &solveRequestOptions{Refine: &refineRequestOptions{Tol: -1}},
	}, &er); st != http.StatusBadRequest {
		t.Fatalf("negative tolerance: status %d (%+v)", st, er)
	}
}
