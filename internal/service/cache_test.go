package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/pastix-go/pastix"
	"github.com/pastix-go/pastix/internal/gen"
)

func testMatrix() *pastix.Matrix { return gen.Laplacian3D(4, 4, 4) }

// realAnalyze is the production analysis pass on a small problem, with an
// invocation counter.
func realAnalyze(count *atomic.Int64, delay time.Duration) func(context.Context, *pastix.Matrix) (*pastix.Analysis, error) {
	return func(ctx context.Context, a *pastix.Matrix) (*pastix.Analysis, error) {
		count.Add(1)
		if delay > 0 {
			time.Sleep(delay)
		}
		return pastix.AnalyzeContext(ctx, a, pastix.Options{Processors: 2})
	}
}

// N concurrent requests for one pattern must trigger exactly one analysis
// (single-flight); everyone gets the same *Analysis. Run under -race.
func TestCacheSingleFlight(t *testing.T) {
	var count atomic.Int64
	m := NewMetrics()
	c := newAnalysisCache(8, m, realAnalyze(&count, 20*time.Millisecond))
	a := testMatrix()
	const N = 24
	results := make([]*pastix.Analysis, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			an, _, err := c.Get(context.Background(), "fp", a)
			if err != nil {
				t.Errorf("req %d: %v", i, err)
				return
			}
			results[i] = an
		}(i)
	}
	wg.Wait()
	if got := count.Load(); got != 1 {
		t.Fatalf("analysis ran %d times, want exactly 1 (single-flight)", got)
	}
	for i := 1; i < N; i++ {
		if results[i] != results[0] {
			t.Fatalf("request %d got a different analysis object", i)
		}
	}
	if m.CacheMisses.Value() != 1 {
		t.Fatalf("misses %d, want 1", m.CacheMisses.Value())
	}
	if hits := m.CacheHits.Value() + m.CacheCoalesced.Value(); hits < N-1 {
		t.Fatalf("hits+coalesced %d, want ≥ %d", hits, N-1)
	}
}

// The LRU must evict in least-recently-used order, with Get refreshing
// recency.
func TestCacheLRUEvictionOrder(t *testing.T) {
	var count atomic.Int64
	m := NewMetrics()
	c := newAnalysisCache(2, m, realAnalyze(&count, 0))
	a := testMatrix()
	ctx := context.Background()
	for _, k := range []string{"a", "b"} {
		if _, _, err := c.Get(ctx, k, a); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" so "b" is now least recently used.
	if _, hit, err := c.Get(ctx, "a", a); err != nil || !hit {
		t.Fatalf("expected hit on a: hit=%v err=%v", hit, err)
	}
	if _, _, err := c.Get(ctx, "c", a); err != nil {
		t.Fatal(err)
	}
	keys := c.Keys()
	if len(keys) != 2 || keys[0] != "c" || keys[1] != "a" {
		t.Fatalf("resident keys %v, want [c a] (b evicted as LRU)", keys)
	}
	if m.CacheEvictions.Value() != 1 {
		t.Fatalf("evictions %d, want 1", m.CacheEvictions.Value())
	}
	// "b" was evicted: next Get re-analyses.
	before := count.Load()
	if _, hit, err := c.Get(ctx, "b", a); err != nil || hit {
		t.Fatalf("expected miss on evicted b: hit=%v err=%v", hit, err)
	}
	if count.Load() != before+1 {
		t.Fatal("evicted entry did not trigger re-analysis")
	}
}

// A leader whose own request context is cancelled mid-analysis must not
// poison the waiting followers: one of them re-leads and everyone else still
// gets a good analysis.
func TestCacheCancelledLeaderDoesNotPoisonFollowers(t *testing.T) {
	var calls atomic.Int64
	leaderIn := make(chan struct{})
	m := NewMetrics()
	c := newAnalysisCache(8, m, func(ctx context.Context, a *pastix.Matrix) (*pastix.Analysis, error) {
		if calls.Add(1) == 1 {
			close(leaderIn)
			<-ctx.Done() // the doomed leader blocks until its request dies
			return nil, ctx.Err()
		}
		return pastix.AnalyzeContext(ctx, a, pastix.Options{Processors: 2})
	})
	a := testMatrix()

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := c.Get(leaderCtx, "fp", a)
		leaderErr <- err
	}()
	<-leaderIn // leader is inside the analysis

	const N = 8
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			an, _, err := c.Get(context.Background(), "fp", a)
			if err != nil {
				t.Errorf("follower %d poisoned: %v", i, err)
			} else if an == nil {
				t.Errorf("follower %d got nil analysis", i)
			}
		}(i)
	}
	time.Sleep(10 * time.Millisecond) // let the followers coalesce onto the flight
	cancelLeader()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader error %v, want context.Canceled", err)
	}
	wg.Wait()
	// The cancelled flight plus exactly one successful re-led analysis.
	if got := calls.Load(); got != 2 {
		t.Fatalf("analysis attempts %d, want 2 (cancelled leader + one new leader)", got)
	}
	// And the pattern is now resident.
	if _, hit, err := c.Get(context.Background(), "fp", a); err != nil || !hit {
		t.Fatalf("expected resident entry after recovery: hit=%v err=%v", hit, err)
	}
}

// A genuine analysis failure (not a cancellation) must propagate to the
// waiters and must not be cached.
func TestCacheRealErrorNotCached(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("boom")
	m := NewMetrics()
	c := newAnalysisCache(8, m, func(ctx context.Context, a *pastix.Matrix) (*pastix.Analysis, error) {
		if calls.Add(1) == 1 {
			return nil, boom
		}
		return pastix.AnalyzeContext(ctx, a, pastix.Options{Processors: 1})
	})
	a := testMatrix()
	if _, _, err := c.Get(context.Background(), "fp", a); !errors.Is(err, boom) {
		t.Fatalf("err %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatal("failed analysis was cached")
	}
	if _, hit, err := c.Get(context.Background(), "fp", a); err != nil || hit {
		t.Fatalf("retry after failure: hit=%v err=%v", hit, err)
	}
}
