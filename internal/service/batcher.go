package service

import (
	"context"
	"sync"
	"time"

	"github.com/pastix-go/pastix"
)

// batcher coalesces concurrent solve requests against one factor into
// blocked multi-RHS panel solves: the first request in an empty batch arms a
// window timer; companions arriving within the window join the panel, and
// the batch flushes on the timer or as soon as maxBatch right-hand sides
// have gathered. The panel runs once through SolveOpts, whose level-set
// engine makes every panel column bit-identical to a sequential single-RHS
// solve of it, so riding a batch never changes a client's answer — it only
// amortizes the solve's synchronization latency and gives the packed kernels
// BLAS-3 shape.
type batcher struct {
	window   time.Duration
	maxBatch int

	// run executes one flushed batch: solve the n×len(reqs) panel assembled
	// from the requests and deliver each column (or the error) to its waiter.
	run func(reqs []*solveReq)

	mu      sync.Mutex
	pending []*solveReq
	timer   *time.Timer
}

// solveReq is one client right-hand side waiting to ride a batch.
type solveReq struct {
	ctx context.Context
	b   []float64
	res chan solveRes
}

// solveRes is the demultiplexed result of one batched column.
type solveRes struct {
	x       []float64
	batched int // size of the batch this request rode in
	plan    pastix.PlanStats
	err     error

	// Degraded-success diagnostics, set when the factor was perturbed by
	// static pivoting and the column went through adaptive refinement.
	degraded      bool
	perturbedCols []int
	backwardErr   float64
	refineIters   int
}

func newBatcher(window time.Duration, maxBatch int, run func([]*solveReq)) *batcher {
	return &batcher{window: window, maxBatch: maxBatch, run: run}
}

// submit queues req and returns its result channel. The channel receives
// exactly one solveRes once the batch the request rode in has executed.
func (t *batcher) submit(req *solveReq) <-chan solveRes {
	req.res = make(chan solveRes, 1)
	t.mu.Lock()
	t.pending = append(t.pending, req)
	switch {
	case len(t.pending) >= t.maxBatch:
		// Full: flush now, cancelling the armed window.
		if t.timer != nil {
			t.timer.Stop()
			t.timer = nil
		}
		batch := t.pending
		t.pending = nil
		t.mu.Unlock()
		go t.run(batch)
		return req.res
	case len(t.pending) == 1 && t.window > 0:
		// First in: arm the window.
		t.timer = time.AfterFunc(t.window, t.flush)
	case t.window <= 0:
		// Coalescing disabled: every request is its own batch.
		batch := t.pending
		t.pending = nil
		t.mu.Unlock()
		go t.run(batch)
		return req.res
	}
	t.mu.Unlock()
	return req.res
}

// flush runs the pending batch when the window expires.
func (t *batcher) flush() {
	t.mu.Lock()
	batch := t.pending
	t.pending = nil
	t.timer = nil
	t.mu.Unlock()
	if len(batch) > 0 {
		t.run(batch)
	}
}
