package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"github.com/pastix-go/pastix"
)

// errShed reports a request rejected by admission control (HTTP 429).
var errShed = errors.New("service: admission queue full")

// Server is the solver service: analysis cache, factor store, batcher and
// admission control behind an HTTP handler. Create with New, mount
// Handler(), Close when done.
type Server struct {
	cfg     Config
	metrics *Metrics
	cache   *analysisCache
	store   *factorStore

	queue  chan struct{} // admission slots (queued or executing)
	active chan struct{} // worker slots (executing)

	baseCtx context.Context
	cancel  context.CancelFunc
	start   time.Time
}

// New validates cfg, applies defaults and returns a ready Server.
func New(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	m := NewMetrics()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		metrics: m,
		store:   newFactorStore(cfg.MaxFactors),
		queue:   make(chan struct{}, cfg.QueueDepth),
		active:  make(chan struct{}, cfg.Workers),
		baseCtx: ctx,
		cancel:  cancel,
		start:   time.Now(),
	}
	s.cache = newAnalysisCache(cfg.CacheSize, m, func(ctx context.Context, a *pastix.Matrix) (*pastix.Analysis, error) {
		return pastix.AnalyzeContext(ctx, a, cfg.Solver)
	})
	return s, nil
}

// Metrics exposes the server's metrics (for tests and embedding).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Close releases the server: in-flight batched solves are cancelled.
func (s *Server) Close() { s.cancel() }

// Handler returns the HTTP surface:
//
//	POST /v1/analyze    {"matrix_market": "...", "deadline_ms": 0}
//	POST /v1/factorize  {"matrix_market": "...", "deadline_ms": 0}
//	POST /v1/solve      {"handle": "...", "b": [...], "deadline_ms": 0}
//	POST /v1/release    {"handle": "..."}
//	GET  /healthz
//	GET  /metrics
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("POST /v1/factorize", s.handleFactorize)
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/release", s.handleRelease)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// --- admission control ---

// admit reserves a queue slot (shedding with errShed when QueueDepth is
// exceeded), then waits for a worker slot. The returned release frees both.
// Used by analyze and factorize, whose compute runs on the request's own
// goroutine.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	unqueue, err := s.admitQueue()
	if err != nil {
		return nil, err
	}
	select {
	case s.active <- struct{}{}:
	case <-ctx.Done():
		unqueue()
		return nil, ctx.Err()
	case <-s.baseCtx.Done():
		unqueue()
		return nil, s.baseCtx.Err()
	}
	return func() {
		<-s.active
		unqueue()
	}, nil
}

// admitQueue reserves only a bounded-queue slot, no worker slot. Solve
// requests use it: their compute runs inside the shared batch (which takes
// its own worker slot in runBatch), so a waiter parked on the batching
// window must not pin a worker — that would serialize the very requests the
// batcher exists to coalesce whenever Workers < batch size.
func (s *Server) admitQueue() (release func(), err error) {
	select {
	case s.queue <- struct{}{}:
	default:
		s.metrics.Shed.Inc()
		return nil, errShed
	}
	s.metrics.QueueDepth.Set(int64(len(s.queue)))
	return func() {
		<-s.queue
		s.metrics.QueueDepth.Set(int64(len(s.queue)))
	}, nil
}

// reqContext derives the request context: the client deadline when given,
// the configured default otherwise.
func (s *Server) reqContext(r *http.Request, deadlineMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultDeadline
	if deadlineMS > 0 {
		d = time.Duration(deadlineMS) * time.Millisecond
	}
	return context.WithTimeout(r.Context(), d)
}

// --- request/response bodies ---

type matrixRequest struct {
	// MatrixMarket is the matrix in symmetric coordinate Matrix Market text
	// (the SuiteSparse exchange format; internal/sparse reader).
	MatrixMarket string `json:"matrix_market"`
	DeadlineMS   int64  `json:"deadline_ms,omitempty"`
}

type analyzeResponse struct {
	Fingerprint   string  `json:"fingerprint"`
	Cached        bool    `json:"cached"`
	N             int     `json:"n"`
	NNZ           int     `json:"nnz"`
	Processors    int     `json:"processors"`
	Tasks         int     `json:"tasks"`
	BlockNNZL     int64   `json:"block_nnz_l"`
	PredictedTime float64 `json:"predicted_time_s"`
	AnalyzeMS     float64 `json:"analyze_ms"`
}

type factorizeResponse struct {
	Handle         string  `json:"handle"`
	Fingerprint    string  `json:"fingerprint"`
	AnalysisCached bool    `json:"analysis_cached"`
	FactorizeMS    float64 `json:"factorize_ms"`
}

type solveRequest struct {
	Handle     string    `json:"handle"`
	B          []float64 `json:"b"`
	DeadlineMS int64     `json:"deadline_ms,omitempty"`
}

type solveResponse struct {
	X       []float64 `json:"x"`
	Batched int       `json:"batched"`
	SolveMS float64   `json:"solve_ms"`
}

type releaseRequest struct {
	Handle string `json:"handle"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// --- handlers ---

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req matrixRequest
	a, ok := s.decodeMatrix(w, r, &req)
	if !ok {
		return
	}
	ctx, cancel := s.reqContext(r, req.DeadlineMS)
	defer cancel()
	release, err := s.admit(ctx)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	defer release()
	s.metrics.AnalyzeRequests.Inc()
	fp := pastix.PatternFingerprint(a)
	t0 := time.Now()
	an, hit, err := s.cache.Get(ctx, fp, a)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	if !hit {
		s.metrics.AnalyzeSeconds.Observe(time.Since(t0).Seconds())
	}
	st := an.Stats()
	s.writeJSON(w, http.StatusOK, analyzeResponse{
		Fingerprint:   fp,
		Cached:        hit,
		N:             st.N,
		NNZ:           st.NNZA,
		Processors:    st.Processors,
		Tasks:         st.Tasks,
		BlockNNZL:     st.BlockNNZL,
		PredictedTime: st.PredictedTime,
		AnalyzeMS:     float64(time.Since(t0)) / float64(time.Millisecond),
	})
}

func (s *Server) handleFactorize(w http.ResponseWriter, r *http.Request) {
	var req matrixRequest
	a, ok := s.decodeMatrix(w, r, &req)
	if !ok {
		return
	}
	ctx, cancel := s.reqContext(r, req.DeadlineMS)
	defer cancel()
	release, err := s.admit(ctx)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	defer release()
	s.metrics.FactorizeRequests.Inc()
	fp := pastix.PatternFingerprint(a)
	an, hit, err := s.cache.Get(ctx, fp, a)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	t0 := time.Now()
	// FactorizeValuesTraced re-verifies the pattern against the (possibly
	// cached) analysis — a fingerprint collision surfaces here as
	// ErrPatternMismatch instead of a silently wrong factorization — and the
	// execution trace feeds the runtime metrics.
	f, tr, err := an.FactorizeValuesTraced(ctx, a, pastix.TraceOptions{})
	if err != nil {
		s.writeErr(w, err)
		return
	}
	wall := time.Since(t0)
	s.metrics.FactorizeSeconds.Observe(wall.Seconds())
	if sum, serr := tr.Summary(); serr == nil {
		s.metrics.FactorizeMakespan.Observe(sum.MeasuredMakespan.Seconds())
		s.metrics.FactorizeModelError.Observe(sum.MeanAbsModelError)
		s.metrics.RuntimeMessages.Add(sum.Messages)
		s.metrics.RuntimeBytes.Add(sum.Bytes)
	}
	e := &factorEntry{fingerprint: fp, n: a.N, an: an, f: f}
	e.batch = newBatcher(s.cfg.BatchWindow, s.cfg.MaxBatch, func(reqs []*solveReq) { s.runBatch(e, reqs) })
	handle, err := s.store.Put(e)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, factorizeResponse{
		Handle:         handle,
		Fingerprint:    fp,
		AnalysisCached: hit,
		FactorizeMS:    float64(wall) / float64(time.Millisecond),
	})
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req solveRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	ctx, cancel := s.reqContext(r, req.DeadlineMS)
	defer cancel()
	release, err := s.admitQueue()
	if err != nil {
		s.writeErr(w, err)
		return
	}
	defer release()
	e, err := s.store.Get(req.Handle)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	if len(req.B) != e.n {
		s.writeErr(w, fmt.Errorf("rhs length %d, matrix order %d: %w", len(req.B), e.n, pastix.ErrShape))
		return
	}
	s.metrics.SolveRequests.Inc()
	t0 := time.Now()
	ch := e.batch.submit(&solveReq{ctx: ctx, b: req.B})
	select {
	case res := <-ch:
		if res.err != nil {
			s.writeErr(w, res.err)
			return
		}
		s.writeJSON(w, http.StatusOK, solveResponse{
			X:       res.x,
			Batched: res.batched,
			SolveMS: float64(time.Since(t0)) / float64(time.Millisecond),
		})
	case <-ctx.Done():
		s.writeErr(w, ctx.Err())
	}
}

// runBatch executes one coalesced panel solve and demultiplexes the columns.
func (s *Server) runBatch(e *factorEntry, reqs []*solveReq) {
	k := len(reqs)
	s.metrics.Batches.Inc()
	s.metrics.BatchedRHS.Add(int64(k))
	s.metrics.BatchSize.Observe(float64(k))
	n := e.n
	panel := make([]float64, n*k)
	for i, r := range reqs {
		copy(panel[i*n:(i+1)*n], r.b)
	}
	// The batch outlives any single waiter's cancellation (a cancelled waiter
	// just discards its column); its deadline is the latest deadline across
	// the riders, under the server's lifetime context.
	ctx := s.baseCtx
	cancel := context.CancelFunc(func() {})
	var latest time.Time
	for _, r := range reqs {
		if d, ok := r.ctx.Deadline(); ok && d.After(latest) {
			latest = d
		}
	}
	if !latest.IsZero() {
		ctx, cancel = context.WithDeadline(ctx, latest)
	}
	defer cancel()
	// The panel solve is the batch's unit of compute: it takes a worker slot
	// here (solve waiters hold only queue slots, see admitQueue).
	select {
	case s.active <- struct{}{}:
		defer func() { <-s.active }()
	case <-ctx.Done():
		for _, r := range reqs {
			r.res <- solveRes{err: ctx.Err()}
		}
		return
	}
	t0 := time.Now()
	xs, err := e.an.SolveParallelManyContext(ctx, e.f, panel, k)
	s.metrics.SolveSeconds.Observe(time.Since(t0).Seconds())
	for i, r := range reqs {
		if err != nil {
			r.res <- solveRes{err: err}
			continue
		}
		x := make([]float64, n)
		copy(x, xs[i*n:(i+1)*n])
		r.res <- solveRes{x: x, batched: k}
	}
}

func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req releaseRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if err := s.store.Release(req.Handle); err != nil {
		s.writeErr(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, struct {
		Released string `json:"released"`
	}{req.Handle})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		CachedAnal    int     `json:"cached_analyses"`
		LiveFactors   int     `json:"live_factors"`
	}{"ok", time.Since(s.start).Seconds(), s.cache.Len(), s.store.Len()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.write(w, s.cache.Len(), s.store.Len())
}

// --- encoding helpers ---

func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, into any) bool {
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		s.metrics.RequestErrors.Inc()
		return false
	}
	return true
}

func (s *Server) decodeMatrix(w http.ResponseWriter, r *http.Request, req *matrixRequest) (*pastix.Matrix, bool) {
	if !s.decodeJSON(w, r, req) {
		return nil, false
	}
	a, err := pastix.ReadMatrixMarket(strings.NewReader(req.MatrixMarket))
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "matrix_market: " + err.Error()})
		s.metrics.RequestErrors.Inc()
		return nil, false
	}
	return a, true
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// writeErr maps service and solver errors to HTTP statuses.
func (s *Server) writeErr(w http.ResponseWriter, err error) {
	s.metrics.RequestErrors.Inc()
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, errShed):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrStoreFull):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrUnknownHandle):
		status = http.StatusNotFound
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = http.StatusServiceUnavailable
	case errors.Is(err, pastix.ErrNotSPD),
		errors.Is(err, pastix.ErrShape),
		errors.Is(err, pastix.ErrPatternMismatch),
		errors.Is(err, pastix.ErrBadOptions):
		status = http.StatusBadRequest
	}
	s.writeJSON(w, status, errorResponse{Error: err.Error()})
}
