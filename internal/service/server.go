package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"github.com/pastix-go/pastix"
	"github.com/pastix-go/pastix/internal/store"
)

// errShed reports a request rejected by admission control (HTTP 429).
var errShed = errors.New("service: admission queue full")

// errDraining reports a request arriving while the server drains for
// shutdown (HTTP 503): in-flight work finishes, new work is refused.
var errDraining = errors.New("service: draining for shutdown")

// Server is the solver service: analysis cache, factor store, batcher and
// admission control behind an HTTP handler. Create with New, mount
// Handler(), Close when done.
type Server struct {
	cfg     Config
	metrics *Metrics
	cache   *analysisCache
	store   *factorStore
	idem    *idemStore

	queue  chan struct{} // admission slots (queued or executing)
	active chan struct{} // worker slots (executing)

	// draining flips on BeginDrain: admission refuses new requests with 503
	// and /readyz reports "draining" so load balancers stop routing here,
	// while already-admitted requests (including parked batch riders) finish.
	draining atomic.Bool

	// Durability (Config.DataDir): the journal, the random per-process
	// instance identity, and the startup-replay state machine. recovering is
	// true from New until the replay goroutine finishes; recoveryErr holds
	// the fail-stop cause if it failed; recoverySecs (float64 bits) is the
	// replay wall time for /metrics.
	journal      *store.Store
	instance     string
	recovering   atomic.Bool
	recoveryErr  atomic.Pointer[string]
	recoveryDone chan struct{}
	recoverySecs uint64

	baseCtx context.Context
	cancel  context.CancelFunc
	start   time.Time
}

// New validates cfg, applies defaults and returns a ready Server.
func New(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	m := NewMetrics()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:          cfg,
		metrics:      m,
		store:        newFactorStore(cfg.MaxFactors),
		idem:         newIdemStore(cfg.IdempotencyKeys, cfg.IdempotencyTTL),
		queue:        make(chan struct{}, cfg.QueueDepth),
		active:       make(chan struct{}, cfg.Workers),
		instance:     newInstanceID(),
		recoveryDone: make(chan struct{}),
		baseCtx:      ctx,
		cancel:       cancel,
		start:        time.Now(),
	}
	s.cache = newAnalysisCache(cfg.CacheSize, m, func(ctx context.Context, a *pastix.Matrix) (*pastix.Analysis, error) {
		return pastix.AnalyzeContext(ctx, a, cfg.Solver)
	})
	// Byte-level journal corruption fails New synchronously; the record
	// replay itself runs asynchronously behind the "recovering" gate so the
	// listener can come up and report readiness honestly.
	if err := s.openJournal(); err != nil {
		cancel()
		return nil, err
	}
	return s, nil
}

// Metrics exposes the server's metrics (for tests and embedding).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Close releases the server: in-flight batched solves are cancelled and the
// journal (when durable) is closed, releasing the data directory to a
// successor process.
func (s *Server) Close() {
	s.cancel()
	if s.journal != nil {
		<-s.recoveryDone // never close the journal under the replay goroutine
		s.journal.Close()
	}
}

// Instance returns the random per-process identity (also on /readyz).
func (s *Server) Instance() string { return s.instance }

// BeginDrain puts the server into draining mode: new requests are refused
// with 503 and /readyz flips to 503/"draining" (liveness /healthz stays 200),
// but admitted requests keep running. Call before the HTTP listener shuts
// down, then Drain to wait.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain blocks until every admitted request has finished (the admission
// queue and the worker pool are both empty) or ctx expires, returning
// ctx.Err() in the latter case. Callers typically pair it with
// http.Server.Shutdown under one deadline.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if len(s.queue) == 0 && len(s.active) == 0 {
			return nil
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Handler returns the HTTP surface:
//
//	POST /v1/analyze    {"matrix_market": "...", "deadline_ms": 0}
//	POST /v1/factorize  {"matrix_market": "...", "deadline_ms": 0}
//	POST /v1/solve      {"handle": "...", "b": [...], "deadline_ms": 0,
//	                     "options": {"nrhs": 0, "runtime": "", "refine": {"tol": 0, "max_iter": 0}}}
//	POST /v1/release    {"handle": "..."}
//	GET  /healthz       (liveness: 200 while the process serves at all)
//	GET  /readyz        (readiness: draining state, queue depth, in-flight)
//	GET  /metrics
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("POST /v1/factorize", s.handleFactorize)
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/release", s.handleRelease)
	mux.HandleFunc("POST /v1/replicate", s.handleReplicate)
	mux.HandleFunc("POST /v1/stat", s.handleStat)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// --- admission control ---

// admit reserves a queue slot (shedding with errShed when QueueDepth is
// exceeded), then waits for a worker slot. The returned release frees both.
// Used by analyze and factorize, whose compute runs on the request's own
// goroutine.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	unqueue, err := s.admitQueue()
	if err != nil {
		return nil, err
	}
	select {
	case s.active <- struct{}{}:
	case <-ctx.Done():
		unqueue()
		return nil, ctx.Err()
	case <-s.baseCtx.Done():
		unqueue()
		return nil, s.baseCtx.Err()
	}
	return func() {
		<-s.active
		unqueue()
	}, nil
}

// admitQueue reserves only a bounded-queue slot, no worker slot. Solve
// requests use it: their compute runs inside the shared batch (which takes
// its own worker slot in runBatch), so a waiter parked on the batching
// window must not pin a worker — that would serialize the very requests the
// batcher exists to coalesce whenever Workers < batch size.
func (s *Server) admitQueue() (release func(), err error) {
	if s.draining.Load() {
		return nil, errDraining
	}
	if err := s.durabilityGate(); err != nil {
		return nil, err
	}
	select {
	case s.queue <- struct{}{}:
	default:
		s.metrics.Shed.Inc()
		return nil, errShed
	}
	s.metrics.QueueDepth.Set(int64(len(s.queue)))
	return func() {
		<-s.queue
		s.metrics.QueueDepth.Set(int64(len(s.queue)))
	}, nil
}

// reqContext derives the request context: the client deadline when given,
// the configured default otherwise.
func (s *Server) reqContext(r *http.Request, deadlineMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultDeadline
	if deadlineMS > 0 {
		d = time.Duration(deadlineMS) * time.Millisecond
	}
	return context.WithTimeout(r.Context(), d)
}

// --- request/response bodies ---

type matrixRequest struct {
	// MatrixMarket is the matrix in symmetric coordinate Matrix Market text
	// (the SuiteSparse exchange format; internal/sparse reader).
	MatrixMarket string `json:"matrix_market"`
	DeadlineMS   int64  `json:"deadline_ms,omitempty"`
	// IdempotencyKey (factorize only) makes retries safe: a repeated
	// factorize carrying a remembered key replays the original response —
	// same handle, no second factorization. Keys are remembered for the last
	// Config.IdempotencyKeys successful factorizations.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	// BLR (factorize only) requests block low-rank compression of the factor
	// behind the returned handle. Presence of the block means the client wants
	// compression: Tol must be in (0,1) or the request fails with 400. Solves
	// against a compressed handle are lossy at the Tol level unless they carry
	// refinement options; the mpsim solve runtime is unavailable for them.
	BLR *blrRequestOptions `json:"blr,omitempty"`
}

// blrRequestOptions is the JSON mirror of pastix.BLROptions.
type blrRequestOptions struct {
	// Tol is the per-block relative Frobenius compression tolerance.
	Tol float64 `json:"tol"`
	// MinBlockSize is the smallest block dimension offered to the compressor;
	// 0 selects the library default.
	MinBlockSize int `json:"min_block_size,omitempty"`
}

type analyzeResponse struct {
	Fingerprint   string  `json:"fingerprint"`
	Cached        bool    `json:"cached"`
	N             int     `json:"n"`
	NNZ           int     `json:"nnz"`
	Processors    int     `json:"processors"`
	Tasks         int     `json:"tasks"`
	BlockNNZL     int64   `json:"block_nnz_l"`
	PredictedTime float64 `json:"predicted_time_s"`
	AnalyzeMS     float64 `json:"analyze_ms"`
}

type factorizeResponse struct {
	Handle         string  `json:"handle"`
	Fingerprint    string  `json:"fingerprint"`
	AnalysisCached bool    `json:"analysis_cached"`
	FactorizeMS    float64 `json:"factorize_ms"`
	// SolvePlan is the prewarmed level-set solve schedule this handle's
	// solves will run (PrepareSolve at factorize time).
	SolvePlan *pastix.PlanStats `json:"solve_plan,omitempty"`
	// Degraded-success fields (static pivoting): present when the
	// factorization substituted pivots instead of failing.
	PerturbedColumns []int   `json:"perturbed_columns,omitempty"`
	PivotEpsilon     float64 `json:"pivot_epsilon,omitempty"`
	PivotGrowth      float64 `json:"pivot_growth,omitempty"`
	// Robust-escalation fields: set when the unpivoted factorization broke
	// down and the server recovered via FactorizeValuesRobust.
	PivotAttempts int     `json:"pivot_attempts,omitempty"`
	BackwardError float64 `json:"backward_error,omitempty"`
	RefineIters   int     `json:"refine_iters,omitempty"`
	// IdempotentReplay marks a response replayed from the idempotency store:
	// the handle was made by an earlier request with the same key and no new
	// factorization ran.
	IdempotentReplay bool `json:"idempotent_replay,omitempty"`
	// Compression reports the BLR byte accounting when the handle's factor is
	// compressed (request "blr" block, or server-level Options.BLR).
	Compression *pastix.CompressionStats `json:"compression,omitempty"`
	// Durable marks a handle journaled to the durable store before this
	// acknowledgement: it survives a crash or restart of the node. Only set
	// on servers running with Config.DataDir.
	Durable bool `json:"durable,omitempty"`
	// Imported marks a handle created by a /v1/replicate transfer rather
	// than a local factorization: the factor values were adopted verbatim
	// from the exporting node.
	Imported bool `json:"imported,omitempty"`
}

type solveRequest struct {
	Handle     string    `json:"handle"`
	B          []float64 `json:"b"`
	DeadlineMS int64     `json:"deadline_ms,omitempty"`
	// Options mirrors pastix.SolveOptions (the unified Solve API). Requests
	// without it keep the historical contract: one right-hand side, the
	// default engine, eligible for batch coalescing. Requests carrying
	// options run directly (a panel or a pinned engine must not be coalesced
	// with strangers) on their own worker slot.
	Options *solveRequestOptions `json:"options,omitempty"`
}

// solveRequestOptions is the JSON mirror of pastix.SolveOptions.
type solveRequestOptions struct {
	// NRHS makes b an n×NRHS column-major panel; 0 means 1.
	NRHS int `json:"nrhs,omitempty"`
	// Runtime pins the solve engine ("auto", "seq", "mpsim", "shared",
	// "dynamic"); empty means auto.
	Runtime string `json:"runtime,omitempty"`
	// Refine requests adaptive iterative refinement of every column.
	Refine *refineRequestOptions `json:"refine,omitempty"`
}

type refineRequestOptions struct {
	Tol     float64 `json:"tol,omitempty"`
	MaxIter int     `json:"max_iter,omitempty"`
}

type solveResponse struct {
	X       []float64 `json:"x"`
	NRHS    int       `json:"nrhs,omitempty"`
	Batched int       `json:"batched"`
	SolveMS float64   `json:"solve_ms"`
	// Plan describes the level-set solve schedule when that engine ran.
	Plan *pastix.PlanStats `json:"plan,omitempty"`
	// Degraded-success fields: set when the factor behind the handle carries
	// static-pivot perturbations — the solution went through adaptive
	// refinement and these report the quality achieved, so clients get a 200
	// with diagnostics instead of an error status.
	Degraded         bool    `json:"degraded,omitempty"`
	PerturbedColumns []int   `json:"perturbed_columns,omitempty"`
	BackwardError    float64 `json:"backward_error,omitempty"`
	RefineIters      int     `json:"refine_iters,omitempty"`
}

type releaseRequest struct {
	Handle string `json:"handle"`
}

type errorResponse struct {
	Error string `json:"error"`
	// Code is a stable machine-readable cause ("not_spd",
	// "pivot_exhausted") for 422 numerical-breakdown responses.
	Code string `json:"code,omitempty"`
	// Column is the offending pivot column for not_spd breakdowns (pointer so
	// column 0 survives encoding).
	Column *int `json:"column,omitempty"`
	// PerturbedColumns and Attempts detail pivot_exhausted responses: what
	// the last escalation attempt perturbed and how many attempts ran.
	PerturbedColumns []int `json:"perturbed_columns,omitempty"`
	Attempts         int   `json:"attempts,omitempty"`
}

// --- handlers ---

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req matrixRequest
	a, ok := s.decodeMatrix(w, r, &req)
	if !ok {
		return
	}
	ctx, cancel := s.reqContext(r, req.DeadlineMS)
	defer cancel()
	release, err := s.admit(ctx)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	defer release()
	s.metrics.AnalyzeRequests.Inc()
	fp := pastix.PatternFingerprint(a)
	t0 := time.Now()
	an, hit, err := s.cache.Get(ctx, fp, a)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	if !hit {
		s.metrics.AnalyzeSeconds.Observe(time.Since(t0).Seconds())
		if s.journal != nil {
			// Journal the generator, not the product: the matrix bytes are
			// enough, because analysis is a pure function of (pattern,
			// Options) and replay recomputes it bitwise. Append failures are
			// non-fatal — an analysis is a cache warm, not client state.
			_, _ = s.journal.AppendAnalysis(&store.AnalysisRecord{Fingerprint: fp, Matrix: a})
		}
	}
	st := an.Stats()
	s.writeJSON(w, http.StatusOK, analyzeResponse{
		Fingerprint:   fp,
		Cached:        hit,
		N:             st.N,
		NNZ:           st.NNZA,
		Processors:    st.Processors,
		Tasks:         st.Tasks,
		BlockNNZL:     st.BlockNNZL,
		PredictedTime: st.PredictedTime,
		AnalyzeMS:     float64(time.Since(t0)) / float64(time.Millisecond),
	})
}

func (s *Server) handleFactorize(w http.ResponseWriter, r *http.Request) {
	var req matrixRequest
	a, ok := s.decodeMatrix(w, r, &req)
	if !ok {
		return
	}
	// Idempotent replay: a retry of a factorize that already committed gets
	// the original response back — same handle, no second factor — before it
	// costs a queue or worker slot. Draining still refuses, so a load
	// balancer's view of a draining node stays consistent.
	if req.IdempotencyKey != "" {
		if s.draining.Load() {
			s.writeErr(w, errDraining)
			return
		}
		if err := s.durabilityGate(); err != nil {
			s.writeErr(w, err)
			return
		}
		if resp, ok := s.idem.get(req.IdempotencyKey); ok {
			resp.IdempotentReplay = true
			s.writeJSON(w, http.StatusOK, resp)
			return
		}
	}
	ctx, cancel := s.reqContext(r, req.DeadlineMS)
	defer cancel()
	release, err := s.admit(ctx)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	defer release()
	s.metrics.FactorizeRequests.Inc()
	fp := pastix.PatternFingerprint(a)
	an, hit, err := s.cache.Get(ctx, fp, a)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	t0 := time.Now()
	// FactorizeValuesTraced re-verifies the pattern against the (possibly
	// cached) analysis — a fingerprint collision surfaces here as
	// ErrPatternMismatch instead of a silently wrong factorization — and the
	// execution trace feeds the runtime metrics.
	f, tr, err := an.FactorizeValuesTraced(ctx, a, pastix.TraceOptions{})
	var robust *pastix.RobustStats
	if err != nil && errors.Is(err, pastix.ErrNotSPD) && s.cfg.Solver.StaticPivot.MaxRetries > 0 {
		// Numerical breakdown with escalation configured: retry with
		// escalating static pivoting instead of failing the request.
		var rs pastix.RobustStats
		f, rs, err = an.FactorizeValuesRobust(ctx, a)
		if err == nil {
			robust, tr = &rs, nil
			s.metrics.PivotRetries.Add(int64(rs.Attempts - 1))
		}
	}
	if err != nil {
		s.writeErr(w, err)
		return
	}
	wall := time.Since(t0)
	s.metrics.FactorizeSeconds.Observe(wall.Seconds())
	if tr != nil {
		if sum, serr := tr.Summary(); serr == nil {
			s.metrics.FactorizeMakespan.Observe(sum.MeasuredMakespan.Seconds())
			s.metrics.FactorizeModelError.Observe(sum.MeanAbsModelError)
			s.metrics.RuntimeMessages.Add(sum.Messages)
			s.metrics.RuntimeBytes.Add(sum.Bytes)
		}
	}
	// Compress before PrepareSolve: the warmed solve pack aliases the
	// compressed cells zero-copy, whereas compressing afterwards would throw
	// away a freshly packed dense pack. A factor already compressed by a
	// server-level Options.BLR passes through idempotently; conflicting server
	// configuration (mpsim-pinned solver, fault injection) surfaces as a 400.
	if req.BLR != nil {
		if _, cerr := f.Compress(pastix.BLROptions{Tol: req.BLR.Tol, MinBlockSize: req.BLR.MinBlockSize}); cerr != nil {
			s.writeErr(w, cerr)
			return
		}
	}
	// Warm the solve path while we still own the factorize request: the solve
	// DAG, the level-set plan for the schedule's processors and the packed
	// solve panels are all built here, so the handle's first solve request
	// pays none of the one-time cost.
	plan, err := an.PrepareSolve(f)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	e := &factorEntry{fingerprint: fp, n: a.N, an: an, f: f, src: a, idemKey: req.IdempotencyKey}
	e.batch = newBatcher(s.cfg.BatchWindow, s.cfg.MaxBatch, func(reqs []*solveReq) { s.runBatch(e, reqs) })
	handle, err := s.store.Put(e)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	resp := factorizeResponse{
		Handle:         handle,
		Fingerprint:    fp,
		AnalysisCached: hit,
		FactorizeMS:    float64(wall) / float64(time.Millisecond),
		SolvePlan:      &plan,
	}
	if rep := f.Perturbations(); rep != nil && len(rep.Perturbed) > 0 {
		resp.PerturbedColumns = rep.Columns()
		resp.PivotEpsilon = rep.Epsilon
		resp.PivotGrowth = rep.PivotGrowth
		s.metrics.PivotPerturbations.Add(int64(len(rep.Perturbed)))
	}
	if robust != nil {
		resp.PivotAttempts = robust.Attempts
		resp.BackwardError = robust.BackwardError
		resp.RefineIters = robust.RefineIterations
	}
	resp.Compression = f.CompressionStats()
	if s.journal != nil {
		// Persist before acknowledging: the journal append (fsync'd WAL
		// write) must commit before the client — or a gateway counting this
		// node as a replica — learns the handle. A failed append un-puts the
		// handle and fails the request; "durable": true is never a lie.
		resp.Durable = true
		respJSON, merr := json.Marshal(resp)
		if merr == nil {
			merr = s.journalFactor(handle, fp, req.IdempotencyKey, a, f, respJSON)
		}
		if merr != nil {
			_ = s.store.Release(handle)
			s.writeErr(w, fmt.Errorf("journaling factor: %w", merr))
			return
		}
		e.durable = true
	}
	if req.IdempotencyKey != "" {
		s.idem.put(req.IdempotencyKey, handle, resp)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req solveRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	ctx, cancel := s.reqContext(r, req.DeadlineMS)
	defer cancel()
	release, err := s.admitQueue()
	if err != nil {
		s.writeErr(w, err)
		return
	}
	defer release()
	e, err := s.store.Get(req.Handle)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	s.metrics.SolveRequests.Inc()
	if req.Options != nil {
		s.solveDirect(w, ctx, e, &req)
		return
	}
	if len(req.B) != e.n {
		s.writeErr(w, fmt.Errorf("rhs length %d, matrix order %d: %w", len(req.B), e.n, pastix.ErrShape))
		return
	}
	t0 := time.Now()
	ch := e.batch.submit(&solveReq{ctx: ctx, b: req.B})
	select {
	case res := <-ch:
		if res.err != nil {
			s.writeErr(w, res.err)
			return
		}
		resp := solveResponse{
			X:                res.x,
			Batched:          res.batched,
			SolveMS:          float64(time.Since(t0)) / float64(time.Millisecond),
			Degraded:         res.degraded,
			PerturbedColumns: res.perturbedCols,
			BackwardError:    res.backwardErr,
			RefineIters:      res.refineIters,
		}
		if res.plan != (pastix.PlanStats{}) {
			plan := res.plan
			resp.Plan = &plan
		}
		s.writeJSON(w, http.StatusOK, resp)
	case <-ctx.Done():
		s.writeErr(w, ctx.Err())
	}
}

// solveDirect executes one options-bearing solve request through the unified
// SolveOpts entry point, bypassing the batcher: a panel is already its own
// batch, and a request pinning an engine or refinement must not be coalesced
// with requests that did not ask for them. It takes its own worker slot (the
// caller holds only a queue slot).
func (s *Server) solveDirect(w http.ResponseWriter, ctx context.Context, e *factorEntry, req *solveRequest) {
	opts := pastix.SolveOptions{NRHS: req.Options.NRHS}
	if req.Options.Runtime != "" {
		rt, err := pastix.ParseRuntime(req.Options.Runtime)
		if err != nil {
			s.writeErr(w, err)
			return
		}
		opts.Runtime = rt
	}
	if req.Options.Refine != nil {
		opts.Refine = &pastix.RefineOptions{Tol: req.Options.Refine.Tol, MaxIter: req.Options.Refine.MaxIter}
	}
	nrhs := opts.NRHS
	if nrhs == 0 {
		nrhs = 1
	}
	if nrhs < 0 || len(req.B) != e.n*nrhs {
		s.writeErr(w, fmt.Errorf("rhs panel length %d, want n×nrhs = %d×%d: %w", len(req.B), e.n, nrhs, pastix.ErrShape))
		return
	}
	// A perturbed factor gets the same degraded-success repair the batched
	// path applies: refine every column and report the quality achieved.
	rep := e.f.Perturbations()
	degraded := rep != nil && len(rep.Perturbed) > 0
	if degraded && opts.Refine == nil {
		opts.Refine = &pastix.RefineOptions{}
	}
	select {
	case s.active <- struct{}{}:
		defer func() { <-s.active }()
	case <-ctx.Done():
		s.writeErr(w, ctx.Err())
		return
	case <-s.baseCtx.Done():
		s.writeErr(w, s.baseCtx.Err())
		return
	}
	t0 := time.Now()
	res, err := e.an.SolveOpts(ctx, e.f, req.B, opts)
	s.metrics.SolveSeconds.Observe(time.Since(t0).Seconds())
	if err != nil {
		s.writeErr(w, err)
		return
	}
	resp := solveResponse{
		X:       res.X,
		NRHS:    nrhs,
		SolveMS: float64(time.Since(t0)) / float64(time.Millisecond),
	}
	if res.Plan != (pastix.PlanStats{}) {
		plan := res.Plan
		resp.Plan = &plan
	}
	if res.Refine != nil {
		resp.BackwardError = res.Refine.BackwardError
		resp.RefineIters = res.Refine.Iterations
		if degraded {
			resp.Degraded = true
			resp.PerturbedColumns = rep.Columns()
			s.metrics.DegradedSolves.Inc()
			s.metrics.RefineIterations.Add(int64(res.Refine.Iterations))
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// runBatch executes one coalesced panel solve and demultiplexes the columns.
func (s *Server) runBatch(e *factorEntry, reqs []*solveReq) {
	k := len(reqs)
	s.metrics.Batches.Inc()
	s.metrics.BatchedRHS.Add(int64(k))
	s.metrics.BatchSize.Observe(float64(k))
	n := e.n
	panel := make([]float64, n*k)
	for i, r := range reqs {
		copy(panel[i*n:(i+1)*n], r.b)
	}
	// The batch outlives any single waiter's cancellation (a cancelled waiter
	// just discards its column); its deadline is the latest deadline across
	// the riders, under the server's lifetime context.
	ctx := s.baseCtx
	cancel := context.CancelFunc(func() {})
	var latest time.Time
	for _, r := range reqs {
		if d, ok := r.ctx.Deadline(); ok && d.After(latest) {
			latest = d
		}
	}
	if !latest.IsZero() {
		ctx, cancel = context.WithDeadline(ctx, latest)
	}
	defer cancel()
	// The panel solve is the batch's unit of compute: it takes a worker slot
	// here (solve waiters hold only queue slots, see admitQueue).
	select {
	case s.active <- struct{}{}:
		defer func() { <-s.active }()
	case <-ctx.Done():
		for _, r := range reqs {
			r.res <- solveRes{err: ctx.Err()}
		}
		return
	}
	t0 := time.Now()
	pres, err := e.an.SolveOpts(ctx, e.f, panel, pastix.SolveOptions{NRHS: k})
	s.metrics.SolveSeconds.Observe(time.Since(t0).Seconds())
	var xs []float64
	var plan pastix.PlanStats
	if err == nil {
		xs, plan = pres.X, pres.Plan
	}
	rep := e.f.Perturbations()
	degraded := rep != nil && len(rep.Perturbed) > 0
	for i, r := range reqs {
		if err != nil {
			r.res <- solveRes{err: err}
			continue
		}
		x := make([]float64, n)
		copy(x, xs[i*n:(i+1)*n])
		res := solveRes{x: x, batched: k, plan: plan}
		if degraded {
			// The factor was perturbed by static pivoting: repair each column
			// with adaptive refinement and report the quality achieved, so the
			// client gets a degraded success instead of an error.
			if rx, rs, rerr := e.an.RefineSolution(e.f, r.b, x); rerr == nil {
				res.x = rx
				res.degraded = true
				res.perturbedCols = rep.Columns()
				res.backwardErr = rs.BackwardError
				res.refineIters = rs.Iterations
				s.metrics.DegradedSolves.Inc()
				s.metrics.RefineIterations.Add(int64(rs.Iterations))
			}
		}
		r.res <- res
	}
}

func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req releaseRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if err := s.durabilityGate(); err != nil {
		s.writeErr(w, err)
		return
	}
	if err := s.store.Release(req.Handle); err != nil {
		s.writeErr(w, err)
		return
	}
	// A released handle must not come back from the idempotency store: drop
	// any remembered factorize response that issued it. Durable stores also
	// journal the tombstone so replay does not resurrect the handle.
	s.idem.dropHandle(req.Handle)
	if s.journal != nil {
		if err := s.journal.AppendRelease(req.Handle); err != nil {
			s.writeErr(w, fmt.Errorf("journaling release: %w", err))
			return
		}
	}
	s.writeJSON(w, http.StatusOK, struct {
		Released string `json:"released"`
	}{req.Handle})
}

// handleHealthz is pure liveness: 200 whenever the process can serve HTTP at
// all, draining or not. Restart decisions key off this; routing decisions
// key off /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}{"ok", time.Since(s.start).Seconds()})
}

// ReadyState is the /readyz body: the routing-relevant view of one node.
// The gateway's health model consumes it as its active probe signal.
type ReadyState struct {
	// Status is "ok", "draining", "recovering" or "recovery_failed"; all but
	// "ok" also flip the HTTP status to 503 so plain load balancers stop
	// routing here. "recovering" is transient (startup journal replay);
	// "recovery_failed" is terminal (the node fail-stopped rather than serve
	// from a store it knows is incomplete).
	Status        string  `json:"status"`
	Draining      bool    `json:"draining"`
	Recovering    bool    `json:"recovering,omitempty"`
	QueueDepth    int     `json:"queue_depth"`    // admitted requests (queued or executing)
	QueueCapacity int     `json:"queue_capacity"` // admission bound (QueueDepth config)
	InFlight      int     `json:"in_flight"`      // requests holding worker slots
	Workers       int     `json:"workers"`
	CachedAnal    int     `json:"cached_analyses"`
	LiveFactors   int     `json:"live_factors"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Instance is the random per-process identity: a prober seeing the same
	// address with a new instance knows the process restarted (and with it,
	// whether non-durable state is gone).
	Instance string `json:"instance,omitempty"`
	// Durable reports whether this node journals factorizations (DataDir).
	Durable bool `json:"durable,omitempty"`
}

// handleReadyz is readiness: whether a router should send this node traffic,
// with the load signals (queue depth, in-flight count) a health model needs
// beyond the boolean.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := ReadyState{
		Status:        "ok",
		Draining:      s.draining.Load(),
		Recovering:    s.recovering.Load(),
		QueueDepth:    len(s.queue),
		QueueCapacity: cap(s.queue),
		InFlight:      len(s.active),
		Workers:       cap(s.active),
		CachedAnal:    s.cache.Len(),
		LiveFactors:   s.store.Len(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Instance:      s.instance,
		Durable:       s.journal != nil,
	}
	code := http.StatusOK
	switch {
	case st.Draining:
		st.Status = "draining"
		code = http.StatusServiceUnavailable
	case st.Recovering:
		st.Status = "recovering"
		code = http.StatusServiceUnavailable
	case s.recoveryErr.Load() != nil:
		st.Status = "recovery_failed"
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, st)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	live, resident, dense := s.store.Stats()
	ratio := 1.0
	if resident > 0 {
		ratio = float64(dense) / float64(resident)
	}
	sample := metricsSample{
		cacheEntries:     s.cache.Len(),
		factorsLive:      live,
		factorBytes:      resident,
		compressionRatio: ratio,
		recoverySeconds:  math.Float64frombits(atomic.LoadUint64(&s.recoverySecs)),
	}
	if s.journal != nil {
		sample.walBytes = s.journal.Stats().WALBytes
	}
	_ = s.metrics.write(w, sample)
}

// --- encoding helpers ---

func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, into any) bool {
	// MaxBytesReader cuts the connection off at the configured cap, so an
	// oversized (or unbounded) body is a structured 413, not an OOM vector.
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(into); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{
				Error: fmt.Sprintf("request body exceeds %d bytes", mbe.Limit),
				Code:  "body_too_large",
			})
		} else {
			s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		}
		s.metrics.RequestErrors.Inc()
		return false
	}
	return true
}

func (s *Server) decodeMatrix(w http.ResponseWriter, r *http.Request, req *matrixRequest) (*pastix.Matrix, bool) {
	if !s.decodeJSON(w, r, req) {
		return nil, false
	}
	a, err := pastix.ReadMatrixMarket(strings.NewReader(req.MatrixMarket))
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "matrix_market: " + err.Error()})
		s.metrics.RequestErrors.Inc()
		return nil, false
	}
	return a, true
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// writeErr maps service and solver errors to HTTP statuses. Numerical
// breakdowns (ErrNotSPD, ErrPivotExhausted) become structured 422s carrying
// the offending column or the exhausted escalation's state, so clients can
// distinguish "your matrix is numerically hard" from a malformed request or
// a server fault.
func (s *Server) writeErr(w http.ResponseWriter, err error) {
	s.metrics.RequestErrors.Inc()
	resp := errorResponse{Error: err.Error()}
	status := http.StatusInternalServerError
	var zp *pastix.ZeroPivotError
	var px *pastix.PivotExhaustedError
	switch {
	case errors.Is(err, errShed):
		status = http.StatusTooManyRequests
	case errors.Is(err, errDraining):
		status = http.StatusServiceUnavailable
	case errors.Is(err, errRecovering):
		status = http.StatusServiceUnavailable
		resp.Code = "recovering"
	case errors.Is(err, errRecoveryFailed):
		status = http.StatusServiceUnavailable
		resp.Code = "recovery_failed"
	case errors.Is(err, ErrStoreFull):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrUnknownHandle):
		status = http.StatusNotFound
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = http.StatusServiceUnavailable
	case errors.As(err, &px):
		status = http.StatusUnprocessableEntity
		resp.Code = "pivot_exhausted"
		resp.PerturbedColumns = px.Columns
		resp.Attempts = px.Attempts
	case errors.As(err, &zp):
		status = http.StatusUnprocessableEntity
		resp.Code = "not_spd"
		col := zp.Column
		resp.Column = &col
	case errors.Is(err, pastix.ErrNotSPD):
		status = http.StatusUnprocessableEntity
		resp.Code = "not_spd"
	case errors.Is(err, pastix.ErrShape),
		errors.Is(err, pastix.ErrPatternMismatch),
		errors.Is(err, pastix.ErrBadOptions):
		status = http.StatusBadRequest
	}
	s.writeJSON(w, status, resp)
}
