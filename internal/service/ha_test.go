package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/pastix-go/pastix"
	"github.com/pastix-go/pastix/internal/gen"
)

// /readyz reports the routing-relevant load signals as JSON and /healthz is
// liveness-only, so a gateway's health model can tell "busy or draining"
// apart from "dead".
func TestServerReadyz(t *testing.T) {
	s, err := New(Config{Solver: pastix.Options{Processors: 2}, QueueDepth: 7, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz status %d, want 200", resp.StatusCode)
	}
	var st ReadyState
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Status != "ok" || st.Draining {
		t.Fatalf("idle readyz reports %+v", st)
	}
	if st.QueueCapacity != 7 || st.Workers != 3 {
		t.Fatalf("readyz capacities %+v, want queue 7 workers 3", st)
	}

	// A held queue slot shows up as queue depth.
	s.queue <- struct{}{}
	defer func() { <-s.queue }()
	resp2, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var st2 ReadyState
	if err := json.NewDecoder(resp2.Body).Decode(&st2); err != nil {
		t.Fatal(err)
	}
	if st2.QueueDepth != 1 {
		t.Fatalf("readyz queue depth %d with one held slot, want 1", st2.QueueDepth)
	}
}

// An oversized request body is refused with a structured 413 by
// MaxBytesReader, not buffered into memory.
func TestServerBodyLimit(t *testing.T) {
	s, err := New(Config{Solver: pastix.Options{Processors: 1}, MaxBodyBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	big := matrixRequest{MatrixMarket: strings.Repeat("x", 4096)}
	buf, _ := json.Marshal(big)
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(string(buf)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Code != "body_too_large" {
		t.Fatalf("413 code %q, want body_too_large", er.Code)
	}

	// A body under the cap still works.
	mm := mmString(t, gen.Laplacian3D(3, 3, 3))
	if int64(len(mm)) >= 1024 {
		t.Skip("test matrix larger than the cap")
	}
	if st := postJSON(t, ts.URL+"/v1/analyze", matrixRequest{MatrixMarket: mm}, nil); st != http.StatusOK {
		t.Fatalf("small body: status %d, want 200", st)
	}
}

// A duplicate factorize carrying the same idempotency key replays the
// original response: same handle, exactly one live factor — retries are not
// double-applied.
func TestServerFactorizeIdempotent(t *testing.T) {
	s, err := New(Config{Solver: pastix.Options{Processors: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	a := gen.Laplacian3D(4, 4, 4)
	mm := mmString(t, a)
	req := matrixRequest{MatrixMarket: mm, IdempotencyKey: "idem-test-1"}

	var fr1, fr2 factorizeResponse
	if st := postJSON(t, ts.URL+"/v1/factorize", req, &fr1); st != http.StatusOK {
		t.Fatalf("first factorize status %d", st)
	}
	if fr1.IdempotentReplay {
		t.Fatal("first factorize marked as replay")
	}
	if st := postJSON(t, ts.URL+"/v1/factorize", req, &fr2); st != http.StatusOK {
		t.Fatalf("duplicate factorize status %d", st)
	}
	if !fr2.IdempotentReplay {
		t.Fatal("duplicate factorize was not replayed")
	}
	if fr2.Handle != fr1.Handle {
		t.Fatalf("duplicate factorize handle %q, want %q", fr2.Handle, fr1.Handle)
	}
	if s.store.Len() != 1 {
		t.Fatalf("%d live factors after duplicate factorize, want 1 (double-applied)", s.store.Len())
	}
	if s.Metrics().FactorizeRequests.Value() != 1 {
		t.Fatalf("factorize compute ran %d times, want 1", s.Metrics().FactorizeRequests.Value())
	}

	// A different key factorizes fresh.
	var fr3 factorizeResponse
	req.IdempotencyKey = "idem-test-2"
	if st := postJSON(t, ts.URL+"/v1/factorize", req, &fr3); st != http.StatusOK {
		t.Fatalf("fresh-key factorize status %d", st)
	}
	if fr3.IdempotentReplay || fr3.Handle == fr1.Handle {
		t.Fatalf("fresh key replayed old response: %+v", fr3)
	}

	// Releasing the handle invalidates its idempotency entry: the key no
	// longer resurrects a dead handle.
	if st := postJSON(t, ts.URL+"/v1/release", releaseRequest{Handle: fr1.Handle}, nil); st != http.StatusOK {
		t.Fatal("release failed")
	}
	var fr4 factorizeResponse
	req.IdempotencyKey = "idem-test-1"
	if st := postJSON(t, ts.URL+"/v1/factorize", req, &fr4); st != http.StatusOK {
		t.Fatalf("post-release factorize status %d", st)
	}
	if fr4.IdempotentReplay || fr4.Handle == fr1.Handle {
		t.Fatalf("released handle came back from the idempotency store: %+v", fr4)
	}
}

// The idempotency store evicts FIFO beyond its bound.
func TestIdemStoreEviction(t *testing.T) {
	st := newIdemStore(2, time.Hour)
	st.put("k1", "h1", factorizeResponse{Handle: "h1"})
	st.put("k2", "h2", factorizeResponse{Handle: "h2"})
	st.put("k3", "h3", factorizeResponse{Handle: "h3"})
	if _, ok := st.get("k1"); ok {
		t.Fatal("oldest key survived beyond the bound")
	}
	for _, k := range []string{"k2", "k3"} {
		if _, ok := st.get(k); !ok {
			t.Fatalf("key %s evicted early", k)
		}
	}
	st.dropHandle("h2")
	if _, ok := st.get("k2"); ok {
		t.Fatal("dropHandle left the entry behind")
	}
}
