package service

import (
	"errors"
	"testing"
	"time"

	"github.com/pastix-go/pastix"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"negative cache", Config{CacheSize: -1}},
		{"negative factors", Config{MaxFactors: -2}},
		{"negative window", Config{BatchWindow: -time.Millisecond}},
		{"negative batch", Config{MaxBatch: -1}},
		{"negative queue", Config{QueueDepth: -3}},
		{"negative workers", Config{Workers: -1}},
		{"negative deadline", Config{DefaultDeadline: -time.Second}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if !errors.Is(err, ErrBadConfig) {
				t.Fatalf("err = %v, want ErrBadConfig", err)
			}
			if _, nerr := New(tc.cfg); !errors.Is(nerr, ErrBadConfig) {
				t.Fatalf("New err = %v, want ErrBadConfig", nerr)
			}
		})
	}
}

// Invalid embedded solver options surface through Validate and match both
// sentinels, mirroring the library's ErrBadOptions semantics.
func TestConfigValidateSolverOptions(t *testing.T) {
	cfg := Config{Solver: pastix.Options{Processors: -4}}
	err := cfg.Validate()
	if !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig", err)
	}
	if !errors.Is(err, pastix.ErrBadOptions) {
		t.Fatalf("err = %v, want it to also match pastix.ErrBadOptions", err)
	}
}

func TestConfigZeroValueValid(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero Config invalid: %v", err)
	}
	d := Config{}.withDefaults()
	if d.CacheSize <= 0 || d.MaxFactors <= 0 || d.MaxBatch <= 0 ||
		d.QueueDepth <= 0 || d.Workers <= 0 ||
		d.BatchWindow <= 0 || d.DefaultDeadline <= 0 {
		t.Fatalf("withDefaults left a zero field: %+v", d)
	}
}
