package service

import (
	"sync"
	"time"
)

// idemStore remembers the responses of the last max successful factorize
// requests by client idempotency key, FIFO-evicted and TTL-expired. A retry
// carrying a remembered key replays the stored response instead of running a
// second factorization — the property that makes a gateway's
// retry-after-timeout of a factorize that actually committed safe
// (exactly-once handles over an at-least-once transport, the same shape as
// mpsim's receiver dedup).
//
// The store is bounded two ways: max entries (FIFO eviction — the retries
// that matter arrive promptly, so oldest-first is the right victim) and a
// TTL, so a long-idle server does not pin responses forever. Expiry is lazy:
// checked on get and swept from the FIFO head on put, which keeps both
// operations O(1) amortized with no background goroutine.
//
// Replay is best-effort across concurrent duplicates: two simultaneous
// first requests with one key may both factorize (no single-flight); the
// second put wins and later retries replay it. Sequential retries — the
// gateway's pattern — always replay.
type idemStore struct {
	mu       sync.Mutex
	max      int
	ttl      time.Duration
	now      func() time.Time // injectable for tests
	m        map[string]idemEntry
	byHandle map[string]string // handle → key, for release-time invalidation
	order    []string          // insertion order, oldest first
}

type idemEntry struct {
	resp    factorizeResponse
	expires time.Time
}

func newIdemStore(max int, ttl time.Duration) *idemStore {
	return &idemStore{
		max:      max,
		ttl:      ttl,
		now:      time.Now,
		m:        make(map[string]idemEntry),
		byHandle: make(map[string]string),
	}
}

// get returns the remembered response for key, if any and not expired.
func (s *idemStore) get(key string) (factorizeResponse, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[key]
	if !ok {
		return factorizeResponse{}, false
	}
	if s.ttl > 0 && s.now().After(e.expires) {
		s.dropKeyLocked(key, e)
		return factorizeResponse{}, false
	}
	return e.resp, true
}

// put remembers resp under key, evicting expired entries and then the oldest
// beyond the size bound.
func (s *idemStore) put(key, handle string, resp factorizeResponse) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.m[key]; !exists {
		s.order = append(s.order, key)
	}
	var expires time.Time
	if s.ttl > 0 {
		expires = s.now().Add(s.ttl)
	}
	s.m[key] = idemEntry{resp: resp, expires: expires}
	s.byHandle[handle] = key
	// Sweep expired entries from the FIFO head: insertion order is also
	// expiry order (constant TTL), so the scan stops at the first live one.
	if s.ttl > 0 {
		now := s.now()
		for len(s.order) > 0 {
			old := s.order[0]
			e, ok := s.m[old]
			if ok && !now.After(e.expires) {
				break
			}
			s.order = s.order[1:]
			if ok {
				s.dropKeyLocked(old, e)
			}
		}
	}
	for len(s.order) > s.max {
		old := s.order[0]
		s.order = s.order[1:]
		if e, ok := s.m[old]; ok {
			s.dropKeyLocked(old, e)
		}
	}
}

// dropKeyLocked removes key and its handle index entry (not the FIFO order
// slot; callers that pop from order handle that themselves, and get-path
// expiry leaves a dead order slot that put's sweep collects).
func (s *idemStore) dropKeyLocked(key string, e idemEntry) {
	delete(s.m, key)
	if s.byHandle[e.resp.Handle] == key {
		delete(s.byHandle, e.resp.Handle)
	}
}

// len reports the live (unexpired-at-last-touch) entry count.
func (s *idemStore) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// dropHandle forgets the entry that issued handle (called on release, so a
// replayed key can never resurrect a dead handle).
func (s *idemStore) dropHandle(handle string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key, ok := s.byHandle[handle]
	if !ok {
		return
	}
	delete(s.byHandle, handle)
	delete(s.m, key)
	for i, k := range s.order {
		if k == key {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}
