package service

import "sync"

// idemStore remembers the responses of the last max successful factorize
// requests by client idempotency key, FIFO-evicted. A retry carrying a
// remembered key replays the stored response instead of running a second
// factorization — the property that makes a gateway's retry-after-timeout of
// a factorize that actually committed safe (exactly-once handles over an
// at-least-once transport, the same shape as mpsim's receiver dedup).
//
// Replay is best-effort across concurrent duplicates: two simultaneous
// first requests with one key may both factorize (no single-flight); the
// second put wins and later retries replay it. Sequential retries — the
// gateway's pattern — always replay.
type idemStore struct {
	mu       sync.Mutex
	max      int
	m        map[string]factorizeResponse
	byHandle map[string]string // handle → key, for release-time invalidation
	order    []string          // insertion order, oldest first
}

func newIdemStore(max int) *idemStore {
	return &idemStore{
		max:      max,
		m:        make(map[string]factorizeResponse),
		byHandle: make(map[string]string),
	}
}

// get returns the remembered response for key, if any.
func (s *idemStore) get(key string) (factorizeResponse, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.m[key]
	return r, ok
}

// put remembers resp under key, evicting the oldest entry beyond the bound.
func (s *idemStore) put(key, handle string, resp factorizeResponse) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.m[key]; !exists {
		s.order = append(s.order, key)
	}
	s.m[key] = resp
	s.byHandle[handle] = key
	for len(s.order) > s.max {
		old := s.order[0]
		s.order = s.order[1:]
		if r, ok := s.m[old]; ok {
			delete(s.m, old)
			if s.byHandle[r.Handle] == old {
				delete(s.byHandle, r.Handle)
			}
		}
	}
}

// dropHandle forgets the entry that issued handle (called on release, so a
// replayed key can never resurrect a dead handle).
func (s *idemStore) dropHandle(handle string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key, ok := s.byHandle[handle]
	if !ok {
		return
	}
	delete(s.byHandle, handle)
	delete(s.m, key)
	for i, k := range s.order {
		if k == key {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}
