// Package service is the solver-as-a-service layer: a long-running process
// wrapping the pastix pipeline with
//
//   - a pattern-fingerprint → Analysis LRU cache with single-flight
//     deduplication, so concurrent requests for one sparsity pattern trigger
//     exactly one ordering/symbolic/scheduling pass and later requests reuse
//     it (the amortization PaStiX's analysis/factorization split exists for);
//   - a factor handle store, so clients factorize once and solve many times;
//   - a multi-RHS batcher that coalesces concurrent solve requests against
//     one factor into a single blocked panel solve (BLAS-3 shape) and
//     demultiplexes the bit-identical per-column results;
//   - admission control: a bounded queue ahead of a worker pool, 429-style
//     shedding on overflow, and per-request deadlines flowing into the
//     context-aware pastix API.
//
// cmd/pastix-serve exposes it over HTTP.
package service

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"github.com/pastix-go/pastix"
)

// ErrBadConfig reports an invalid Config, mirroring pastix.ErrBadOptions:
// match with errors.Is; the wrapping error names the offending field. When
// the embedded solver options are at fault the error also matches
// pastix.ErrBadOptions.
var ErrBadConfig = errors.New("service: invalid config")

// Config configures a Server. The zero value is valid: every field has a
// documented default.
type Config struct {
	// Solver is the analysis/factorization configuration shared by every
	// request (the cache is keyed by pattern fingerprint only, so all cached
	// analyses are built under these options).
	Solver pastix.Options
	// CacheSize bounds the analysis LRU cache (entries; default 16).
	CacheSize int
	// MaxFactors bounds the live factor handles (default 64); factorize
	// requests beyond it are rejected until handles are released.
	MaxFactors int
	// BatchWindow is how long the first solve request against a factor waits
	// for companions before the batch is flushed (default 2ms; set MaxBatch
	// to 1 to disable coalescing entirely).
	BatchWindow time.Duration
	// MaxBatch flushes a batch early once this many right-hand sides have
	// coalesced (default 32).
	MaxBatch int
	// QueueDepth bounds the admitted-but-unfinished requests; beyond it
	// requests are shed with 429 (default 64).
	QueueDepth int
	// Workers bounds the concurrently executing phases — analyses,
	// factorizations and batched panel solves (default GOMAXPROCS, capped at
	// 8). Solve requests parked on the batching window hold only queue slots,
	// so coalescing works even with a single worker.
	Workers int
	// DefaultDeadline applies to requests that carry no deadline_ms of their
	// own (default 30s).
	DefaultDeadline time.Duration
	// MaxBodyBytes caps a request body (default 64 MiB). Oversized bodies are
	// cut off by http.MaxBytesReader and answered with a structured 413
	// instead of being buffered into memory.
	MaxBodyBytes int64
	// IdempotencyKeys bounds the remembered factorize idempotency keys
	// (default 512). A factorize request carrying idempotency_key replays the
	// original response — same handle, no second factorization — when the key
	// is still remembered, which is what makes gateway retries of a factorize
	// that actually committed safe.
	IdempotencyKeys int
	// IdempotencyTTL bounds how long an idempotency key is remembered
	// (default 1h). Expired keys behave exactly like evicted ones: a retry
	// past the TTL runs a fresh factorization. Retries that matter (gateway
	// retry-after-timeout) arrive within seconds, so the TTL exists to keep
	// the store from pinning stale responses, not to serve old clients.
	IdempotencyTTL time.Duration
	// DataDir enables the durable factor store: factorize results (matrix
	// values + factor payload + response), analyses and releases are
	// journaled to a WAL under this directory before the handle is
	// acknowledged, and startup replays the journal so handles survive a
	// crash or restart. Empty (the default) keeps the server purely
	// in-memory. While the startup replay runs, /readyz reports
	// "recovering" and requests are refused with 503.
	DataDir string
	// SnapshotEvery compacts the WAL into a snapshot after this many
	// records (default 256; only meaningful with DataDir).
	SnapshotEvery int
	// NoFactorExport refuses /v1/replicate export requests with 403. The
	// gateway's anti-entropy repair then falls back to re-factorizing from
	// the journaled matrix values on the destination node, which costs
	// compute instead of bandwidth but yields the same bitwise factors.
	NoFactorExport bool
}

// Validate checks the configuration, rejecting service-nonsensical
// combinations: negative sizes, windows or deadlines, and invalid embedded
// solver options. Errors match ErrBadConfig (and pastix.ErrBadOptions when
// the solver options are at fault).
func (c Config) Validate() error {
	if err := c.Solver.Validate(); err != nil {
		return fmt.Errorf("%w: solver options: %w", ErrBadConfig, err)
	}
	if c.CacheSize < 0 {
		return fmt.Errorf("%w: CacheSize %d is negative", ErrBadConfig, c.CacheSize)
	}
	if c.MaxFactors < 0 {
		return fmt.Errorf("%w: MaxFactors %d is negative", ErrBadConfig, c.MaxFactors)
	}
	if c.BatchWindow < 0 {
		return fmt.Errorf("%w: BatchWindow %v is negative", ErrBadConfig, c.BatchWindow)
	}
	if c.MaxBatch < 0 {
		return fmt.Errorf("%w: MaxBatch %d is negative", ErrBadConfig, c.MaxBatch)
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("%w: QueueDepth %d is negative", ErrBadConfig, c.QueueDepth)
	}
	if c.Workers < 0 {
		return fmt.Errorf("%w: Workers %d is negative", ErrBadConfig, c.Workers)
	}
	if c.DefaultDeadline < 0 {
		return fmt.Errorf("%w: DefaultDeadline %v is negative", ErrBadConfig, c.DefaultDeadline)
	}
	if c.MaxBodyBytes < 0 {
		return fmt.Errorf("%w: MaxBodyBytes %d is negative", ErrBadConfig, c.MaxBodyBytes)
	}
	if c.IdempotencyKeys < 0 {
		return fmt.Errorf("%w: IdempotencyKeys %d is negative", ErrBadConfig, c.IdempotencyKeys)
	}
	if c.IdempotencyTTL < 0 {
		return fmt.Errorf("%w: IdempotencyTTL %v is negative", ErrBadConfig, c.IdempotencyTTL)
	}
	if c.SnapshotEvery < 0 {
		return fmt.Errorf("%w: SnapshotEvery %d is negative", ErrBadConfig, c.SnapshotEvery)
	}
	return nil
}

// withDefaults returns c with every zero field replaced by its default.
func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = 16
	}
	if c.MaxFactors == 0 {
		c.MaxFactors = 64
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 32
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers > 8 {
			c.Workers = 8
		}
	}
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.IdempotencyKeys == 0 {
		c.IdempotencyKeys = 512
	}
	if c.IdempotencyTTL == 0 {
		c.IdempotencyTTL = time.Hour
	}
	return c
}
