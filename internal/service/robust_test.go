package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/pastix-go/pastix"
	"github.com/pastix-go/pastix/internal/gen"
	"github.com/pastix-go/pastix/internal/sparse"
)

// A numerically singular matrix with no pivoting configured must fail with a
// structured 422 naming the offending column — not a generic 400 or 500.
func TestServerNotSPD422(t *testing.T) {
	s, err := New(Config{Solver: pastix.Options{Processors: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	mm := mmString(t, gen.GradedPivot(2, 6, 1e-2, 0.05, true))
	var er errorResponse
	if st := postJSON(t, ts.URL+"/v1/factorize", matrixRequest{MatrixMarket: mm}, &er); st != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", st)
	}
	if er.Code != "not_spd" {
		t.Fatalf("code %q, want not_spd", er.Code)
	}
	if er.Column == nil {
		t.Fatalf("422 body carries no offending column: %+v", er)
	}
}

// A matrix no ε_piv can save (all-zero ⇒ ‖A‖_max = 0 ⇒ τ = 0 at every
// escalation) must exhaust the robust retries and return a structured 422
// with the attempt count.
func TestServerPivotExhausted422(t *testing.T) {
	s, err := New(Config{Solver: pastix.Options{
		Processors:  1,
		StaticPivot: pastix.StaticPivotOptions{Epsilon: 1e-12, MaxRetries: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	zb := sparse.NewBuilder(4)
	for i := 0; i < 4; i++ {
		zb.Add(i, i, 0)
	}
	mm := mmString(t, zb.Build())
	var er errorResponse
	if st := postJSON(t, ts.URL+"/v1/factorize", matrixRequest{MatrixMarket: mm}, &er); st != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", st)
	}
	if er.Code != "pivot_exhausted" {
		t.Fatalf("code %q, want pivot_exhausted", er.Code)
	}
	if er.Attempts < 2 {
		t.Fatalf("attempts %d, want ≥ 2", er.Attempts)
	}
}

// With static pivoting configured up front, a singular matrix factorizes as a
// degraded success: 200 with the perturbed columns on the factorize reply,
// and solves refined to the backward-error target with diagnostics attached.
func TestServerDegradedSuccess(t *testing.T) {
	s, err := New(Config{Solver: pastix.Options{
		Processors:  2,
		StaticPivot: pastix.StaticPivotOptions{Epsilon: 1e-12},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	a := gen.GradedPivot(3, 8, 1e-2, 0.05, true)
	mm := mmString(t, a)
	var fr factorizeResponse
	if st := postJSON(t, ts.URL+"/v1/factorize", matrixRequest{MatrixMarket: mm}, &fr); st != http.StatusOK {
		t.Fatalf("factorize status %d, want 200 (degraded success)", st)
	}
	if len(fr.PerturbedColumns) == 0 {
		t.Fatalf("no perturbed columns reported: %+v", fr)
	}
	if fr.PivotEpsilon != 1e-12 {
		t.Fatalf("pivot epsilon %g, want 1e-12", fr.PivotEpsilon)
	}

	_, b := gen.RHSForSolution(a)
	var sr solveResponse
	if st := postJSON(t, ts.URL+"/v1/solve", solveRequest{Handle: fr.Handle, B: b}, &sr); st != http.StatusOK {
		t.Fatalf("solve status %d, want 200", st)
	}
	if !sr.Degraded {
		t.Fatalf("solve against a perturbed factor not marked degraded: %+v", sr)
	}
	if len(sr.PerturbedColumns) == 0 {
		t.Fatal("degraded solve carries no perturbed columns")
	}
	if sr.BackwardError <= 0 || sr.BackwardError > 1e-10 {
		t.Fatalf("backward error %g outside (0, 1e-10]", sr.BackwardError)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text := readAll(t, resp)
	if !metricAtLeast(t, text, "pastix_pivot_perturbations_total", 1) {
		t.Errorf("pastix_pivot_perturbations_total < 1 in:\n%s", text)
	}
	if !metricAtLeast(t, text, "pastix_degraded_solves_total", 1) {
		t.Errorf("pastix_degraded_solves_total < 1 in:\n%s", text)
	}
}

// With pivoting off but retries allowed, a breakdown triggers the robust
// ε-escalation fallback: the factorize reply reports the attempts taken and
// the probe backward error instead of an error status.
func TestServerRobustFallback(t *testing.T) {
	s, err := New(Config{Solver: pastix.Options{
		Processors:  2,
		StaticPivot: pastix.StaticPivotOptions{MaxRetries: 3},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	mm := mmString(t, gen.GradedPivot(3, 8, 1e-2, 0.05, true))
	var fr factorizeResponse
	if st := postJSON(t, ts.URL+"/v1/factorize", matrixRequest{MatrixMarket: mm}, &fr); st != http.StatusOK {
		t.Fatalf("factorize status %d, want 200 (robust fallback)", st)
	}
	if fr.PivotAttempts < 2 {
		t.Fatalf("pivot attempts %d, want ≥ 2 (unpivoted try + escalation)", fr.PivotAttempts)
	}
	if len(fr.PerturbedColumns) == 0 {
		t.Fatalf("robust fallback reported no perturbed columns: %+v", fr)
	}
	if fr.BackwardError <= 0 || fr.BackwardError > 1e-10 {
		t.Fatalf("probe backward error %g outside (0, 1e-10]", fr.BackwardError)
	}
	if s.Metrics().PivotRetries.Value() < 1 {
		t.Fatal("pivot retries not counted")
	}
}

// Graceful shutdown: BeginDrain flips /readyz to 503 (while /healthz stays a
// 200 liveness signal) and sheds new requests with 503, while a solve already
// parked in the batch window completes and Drain returns once it has.
func TestServerDrain(t *testing.T) {
	s, err := New(Config{
		Solver:      pastix.Options{Processors: 2},
		BatchWindow: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	a := gen.Laplacian3D(4, 4, 4)
	mm := mmString(t, a)
	var fr factorizeResponse
	if st := postJSON(t, ts.URL+"/v1/factorize", matrixRequest{MatrixMarket: mm}, &fr); st != http.StatusOK {
		t.Fatalf("factorize status %d", st)
	}

	// Park a solve in the coalescing window, then start draining under it.
	_, b := gen.RHSForSolution(a)
	var (
		wg     sync.WaitGroup
		status int
		sr     solveResponse
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		status = postJSON(t, ts.URL+"/v1/solve", solveRequest{Handle: fr.Handle, B: b}, &sr)
	}()
	time.Sleep(50 * time.Millisecond)
	s.BeginDrain()

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	text := readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz status %d while draining, want 503", resp.StatusCode)
	}
	if !strings.Contains(text, `"draining"`) {
		t.Fatalf("readyz body %q does not report draining", text)
	}
	// Liveness is unaffected by draining: the process is healthy, just not
	// routable.
	live, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	live.Body.Close()
	if live.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d while draining, want 200 (liveness)", live.StatusCode)
	}
	if st := postJSON(t, ts.URL+"/v1/analyze", matrixRequest{MatrixMarket: mm}, nil); st != http.StatusServiceUnavailable {
		t.Fatalf("new request during drain: status %d, want 503", st)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain did not complete: %v", err)
	}
	wg.Wait()
	if status != http.StatusOK {
		t.Fatalf("parked solve finished with status %d, want 200", status)
	}
	if len(sr.X) != a.N {
		t.Fatalf("parked solve returned %d values, want %d", len(sr.X), a.N)
	}
}
