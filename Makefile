# Tiered checks for pastix-go. Stdlib only; the targets just wrap the go
# tool so CI and humans run the exact same commands.

GO ?= go

.PHONY: all build test race bench vet check

all: check

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Tier-2: the whole suite under the race detector. The shared-memory
# runtime (FactorizeShared/SolveShared) and the mpsim message runtime are
# concurrency-heavy; the stress tests are written to be meaningful here.
# -short keeps the stress loops at a size the detector finishes quickly;
# drop it for the full soak.
race:
	$(GO) test -race -short ./...

race-full:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

check: build vet test race
