# Tiered checks for pastix-go. Stdlib only; the targets just wrap the go
# tool so CI and humans run the exact same commands.

GO ?= go

.PHONY: all build test race bench vet fmt-check check ci

all: ci

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet: fmt-check
	$(GO) vet ./...

# gofmt emits the names of misformatted files; any output is a failure.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Tier-2: the whole suite under the race detector. The shared-memory
# runtime (FactorizeShared/SolveShared) and the mpsim message runtime are
# concurrency-heavy; the stress tests are written to be meaningful here.
# -short keeps the stress loops at a size the detector finishes quickly;
# drop it for the full soak.
race:
	$(GO) test -race -short ./...

race-full:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

check: build vet test race

# The CI entry point (and default target): build, vet+gofmt, tests, race.
ci: build vet test race
