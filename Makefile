# Tiered checks for pastix-go. Stdlib only; the targets just wrap the go
# tool so CI and humans run the exact same commands.

GO ?= go

.PHONY: all build test race bench vet fmt-check check chaos numstress dynstress solvestress hastress blrstress durastress fuzz serve-smoke ci

all: ci

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet: fmt-check
	$(GO) vet ./...

# gofmt emits the names of misformatted files; any output is a failure.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Tier-2: the whole suite under the race detector. The shared-memory
# runtime (FactorizeShared/SolveShared) and the mpsim message runtime are
# concurrency-heavy; the stress tests are written to be meaningful here.
# -short keeps the stress loops at a size the detector finishes quickly;
# drop it for the full soak.
race:
	$(GO) test -race -short ./...

race-full:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Chaos soak: the fault-injection suites under the race detector — the
# reliability layer in mpsim, the injector itself, the multi-seed
# factor/solve soak (bit-identical to fault-free), and the public-API
# chaos round trips.
chaos:
	$(GO) test -race -timeout 300s -run 'Chaos|Fault|Reliab|Retry|Restart|Stall|Boundary' \
		./internal/mpsim ./internal/faults ./internal/solver .

# Numerical stress soak: the static-pivoting and refinement suites under the
# race detector — graded-pivot matrices across all three runtimes (asserting
# bitwise-identical perturbation reports), robust ε-escalation, and adaptive
# refinement convergence.
numstress:
	$(GO) test -race -timeout 300s -run 'NumStress|GradedPivot|PerturbationReport|FactorizeRobust|Refine|Pivot' \
		./internal/solver ./internal/gen ./internal/blas .

# Dynamic-runtime stress soak: the work-stealing executor's unit and
# steal-storm suites plus the cross-runtime conformance tests (every
# generator × every runtime, dynamic bitwise-identical to shared across
# seeds) under the race detector, repeated so rare steal interleavings get a
# chance to fire.
dynstress:
	$(GO) test -race -timeout 300s -count=3 ./internal/dynsched
	$(GO) test -race -timeout 300s -count=2 \
		-run 'RuntimeConformance|DynamicShared|DynamicSteal|DynamicTrace|DynamicRejects|DynamicHonors' \
		./internal/solver

# Solve-path stress soak: the solve DAG projection and level-set engine
# suites, the packed panel kernels, the cross-runtime solve conformance
# table (every generator × every factorization runtime × static/dynamic
# level dispatch × 1/32 RHS, bitwise), the public SolveOpts wrapper
# equivalence, and the serving options path — all under the race detector.
solvestress:
	$(GO) test -race -timeout 300s \
		-run 'SolveDAG|SolvePlan|LevelSolve|LevelStorm|SolveLevel|Packed|SolveConformance|SolveOpts|PrepareSolve|ServerSolveOptions' \
		./internal/solver ./internal/blas ./internal/service .

# HA-serving stress soak: the sharded gateway suites under the race
# detector — consistent-hash ring and breaker units, the retrying client's
# deterministic backoff schedule, end-to-end replicated factorize with
# kill/restart/hedge/drain failover, the service idempotency and readiness
# layers, and the multi-seed node-kill chaos soak (every accepted solve
# bit-identical to a fault-free single-node run).
hastress:
	$(GO) test -race -timeout 600s -count=1 ./internal/gateway/...
	$(GO) test -race -timeout 300s -run 'Readyz|BodyLimit|Idempotent|Drain' ./internal/service

# Block low-rank stress soak: the compression kernels and admission logic,
# the low-rank BLAS panel kernels, the compressed-factor solve conformance
# and refinement-recovery suites, the public BLR API (including the
# BLR-disabled bitwise table test across runtimes), and the compressed
# serving path — all under the race detector.
blrstress:
	$(GO) test -race -timeout 300s ./internal/lowrank
	$(GO) test -race -timeout 300s -run 'LRGemv|LRGemm|GemmLR|GemmDenseLR|TrsmRightLTransUnitLR|LRKernels' ./internal/blas
	$(GO) test -race -timeout 300s -run 'TestCompress|TestBLR|ServerBLR' ./internal/solver ./internal/service .

# Durability stress soak: the WAL/snapshot store under the race detector —
# codec round trips, torn-tail and bit-flip corruption recovery, the
# crash-at-write-k injector sweep — plus the service's journaled durable-ack
# and replicate paths, the gateway anti-entropy repair suites, and the
# durable kill→restart→recover chaos soak (-short trims the seed count).
durastress:
	$(GO) test -race -timeout 300s ./internal/store
	$(GO) test -race -timeout 300s -run 'Durable|Replicate|Recovering|IdemStore' ./internal/service
	$(GO) test -race -timeout 300s -run 'AntiEntropy|AwaitShard' ./internal/gateway
	$(GO) test -race -timeout 600s -short -run 'ChaosDurable' ./internal/gateway/chaos

# Short coverage-guided fuzz pass over the sparse-matrix invariants, the
# file parsers, the task-DAG executor, the low-rank compressor's
# accuracy/admission contract, and the durable store's recovery path
# (arbitrary journal bytes must never panic or resurrect corrupt records;
# 10s each keeps CI bounded; raise -fuzztime for a real hunt).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzCSR -fuzztime 10s ./internal/sparse
	$(GO) test -run '^$$' -fuzz FuzzScheduleDAG -fuzztime 10s ./internal/dynsched
	$(GO) test -run '^$$' -fuzz FuzzLRCompress -fuzztime 10s ./internal/lowrank
	$(GO) test -run '^$$' -fuzz 'FuzzStoreRecover$$' -fuzztime 10s ./internal/store
	$(GO) test -run '^$$' -fuzz 'FuzzStoreRecoverSnapshot$$' -fuzztime 10s ./internal/store

check: build vet test race

# Serving smoke test: boot pastix-serve on a random loopback port and drive
# analyze → analyze (asserting a cache hit) → factorize → coalesced batched
# solves against a generated Poisson problem end to end, then scrape
# /metrics. Self-contained (no curl); exits non-zero on any failure.
serve-smoke:
	$(GO) run ./cmd/pastix-serve -smoke

# The CI entry point (and default target): build, vet+gofmt, tests, race,
# the chaos, numerical-stress, dynamic-runtime, solve-path, HA-serving,
# block-low-rank and durability soaks, a short fuzz pass, then the serving
# smoke test (which ends with a persist → restart → solve round trip).
ci: build vet test race chaos numstress dynstress solvestress hastress blrstress durastress fuzz serve-smoke
