package pastix

import (
	"errors"
	"testing"

	"github.com/pastix-go/pastix/internal/gen"
)

// TestPersistRoundTripDense is the durability contract for dense factors:
// export → (codec elsewhere) → restore against a fresh Analysis of the same
// pattern and options yields bitwise-identical solves without refactorizing.
func TestPersistRoundTripDense(t *testing.T) {
	a := gen.Laplacian3D(8, 8, 8)
	opts := Options{Processors: 4, Runtime: RuntimeDynamic}
	an, err := Analyze(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	f, err := an.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	p, err := f.ExportPayload()
	if err != nil {
		t.Fatal(err)
	}
	_, b := gen.RHSForSolution(a)
	want, err := an.Solve(f, b)
	if err != nil {
		t.Fatal(err)
	}

	// A different Analysis instance, as a restarted process would build.
	an2, err := Analyze(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := an2.RestoreFactor(a, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := an2.Solve(f2, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("x[%d]: restored solve %x differs from original %x", i, got[i], want[i])
		}
	}
	// Refinement binds to the restored matrix values too.
	if _, _, err := an2.SolveRefinedStats(f2, b); err != nil {
		t.Fatalf("refined solve on restored factor: %v", err)
	}
}

// TestPersistRoundTripBLR does the same for a BLR-compressed factor: the
// compressed cells survive export/restore and solves stay bitwise-identical.
func TestPersistRoundTripBLR(t *testing.T) {
	a := gen.Laplacian3D(9, 9, 9)
	opts := Options{Processors: 4, BLR: BLROptions{Tol: 1e-8, MinBlockSize: 8}}
	an, err := Analyze(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	f, err := an.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	if !f.Compressed() {
		t.Fatal("expected a compressed factor")
	}
	p, err := f.ExportPayload()
	if err != nil {
		t.Fatal(err)
	}
	if !p.Compressed() {
		t.Fatal("payload lost the compressed form")
	}
	_, b := gen.RHSForSolution(a)
	want, err := an.SolveParallel(f, b)
	if err != nil {
		t.Fatal(err)
	}
	an2, err := Analyze(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := an2.RestoreFactor(a, p)
	if err != nil {
		t.Fatal(err)
	}
	if !f2.Compressed() {
		t.Fatal("restored factor lost compression")
	}
	if st, st2 := f.CompressionStats(), f2.CompressionStats(); st2 == nil || st2.CompressedBytes != st.CompressedBytes {
		t.Fatalf("compression stats diverged: %+v vs %+v", st2, st)
	}
	got, err := an2.SolveParallel(f2, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("x[%d]: restored solve %x differs from original %x", i, got[i], want[i])
		}
	}
}

// TestRestoreFactorRejects pins the failure modes: wrong pattern, wrong
// payload shape, nil payload.
func TestRestoreFactorRejects(t *testing.T) {
	a := gen.Laplacian2D(12, 12)
	an, err := Analyze(a, Options{Processors: 2})
	if err != nil {
		t.Fatal(err)
	}
	f, err := an.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	p, err := f.ExportPayload()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := an.RestoreFactor(a, nil); err == nil {
		t.Error("nil payload accepted")
	}
	other := gen.Laplacian2D(13, 13)
	if _, err := an.RestoreFactor(other, p); !errors.Is(err, ErrPatternMismatch) {
		t.Errorf("pattern mismatch: err = %v", err)
	}
	anOther, err := Analyze(other, Options{Processors: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := anOther.RestoreFactor(other, p); err == nil {
		t.Error("payload shaped for a different symbol accepted")
	}
	// Truncating one cell must be caught by length validation.
	bad := &FactorPayload{Cells: make([][]float64, len(p.Cells)), Pivots: p.Pivots}
	copy(bad.Cells, p.Cells)
	bad.Cells[0] = bad.Cells[0][:len(bad.Cells[0])-1]
	if _, err := an.RestoreFactor(a, bad); err == nil {
		t.Error("truncated cell accepted")
	}
}

// TestPersistPivotReport verifies the perturbation report rides along.
func TestPersistPivotReport(t *testing.T) {
	a := gen.GradedPivot(4, 8, 1e-2, 0.05, true)
	an, err := Analyze(a, Options{Processors: 2, StaticPivot: StaticPivotOptions{Epsilon: 1e-12}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := an.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	rep := f.Perturbations()
	if rep == nil || len(rep.Perturbed) == 0 {
		t.Skip("matrix did not trigger static pivoting")
	}
	p, err := f.ExportPayload()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := an.RestoreFactor(a, p)
	if err != nil {
		t.Fatal(err)
	}
	rep2 := f2.Perturbations()
	if rep2 == nil || len(rep2.Perturbed) != len(rep.Perturbed) || rep2.Threshold != rep.Threshold {
		t.Fatalf("pivot report lost in round trip: %+v vs %+v", rep2, rep)
	}
}
