// Package pastix is a pure-Go parallel sparse direct solver for symmetric
// positive definite (and symmetric strongly diagonally dominant) systems
// A·x = b, reproducing the solver of
//
//	P. Hénon, P. Ramet, J. Roman. "PaStiX: A Parallel Sparse Direct Solver
//	Based on a Static Scheduling for Mixed 1D/2D Block Distributions."
//	IPPS/SPDP Workshops (Irregular 2000).
//
// The pipeline is the paper's: nested-dissection/Halo-AMD ordering, block
// symbolic factorization, supernode splitting with candidate-processor
// proportional mapping and a per-supernode 1D/2D distribution switch, a
// simulation-driven static schedule, and a supernodal fan-in LDLᵀ numerical
// factorization with total local aggregation, fully driven by the schedule.
//
// # Quick start
//
//	m := pastix.NewBuilder(n)        // assemble the lower triangle
//	m.Add(i, j, v)                   // (both triangles accepted, duplicates sum)
//	A := m.Build()
//	ctx, err := pastix.Analyze(A, pastix.Options{Processors: 4})
//	f, err := ctx.Factorize()
//	x, err := ctx.Solve(f, b)
//
// An Analysis is reusable across factorizations of matrices with the same
// pattern; Factorize runs the schedule on goroutine "processors" exchanging
// messages exactly as the distributed-memory algorithm prescribes.
package pastix

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/pastix-go/pastix/internal/cost"
	"github.com/pastix-go/pastix/internal/etree"
	"github.com/pastix-go/pastix/internal/order"
	"github.com/pastix-go/pastix/internal/part"
	"github.com/pastix-go/pastix/internal/solver"
	"github.com/pastix-go/pastix/internal/sparse"
)

// Matrix is a symmetric sparse matrix (lower triangle stored, CSC).
type Matrix = sparse.SymMatrix

// Builder assembles a Matrix from triplets.
type Builder = sparse.Builder

// NewBuilder returns a Builder for an n×n symmetric matrix.
func NewBuilder(n int) *Builder { return sparse.NewBuilder(n) }

// ElementBuilder assembles a matrix element-by-element (finite-element
// stiffness assembly).
type ElementBuilder = sparse.ElementBuilder

// NewElementBuilder returns an ElementBuilder for an n×n system.
func NewElementBuilder(n int) *ElementBuilder { return sparse.NewElementBuilder(n) }

// ReadRSA parses a Harwell-Boeing RSA/PSA file (the format of the paper's
// test problems) and returns the matrix and the file's title.
func ReadRSA(r io.Reader) (*Matrix, string, error) { return sparse.ReadHB(r) }

// WriteRSA writes the matrix in Harwell-Boeing RSA format.
func WriteRSA(w io.Writer, a *Matrix, title string) error { return sparse.WriteHB(w, a, title) }

// ReadMatrixMarket parses a symmetric coordinate Matrix Market stream (the
// SuiteSparse exchange format).
func ReadMatrixMarket(r io.Reader) (*Matrix, error) { return sparse.ReadMatrixMarket(r) }

// WriteMatrixMarket writes the matrix in symmetric coordinate Matrix Market
// format.
func WriteMatrixMarket(w io.Writer, a *Matrix, comment string) error {
	return sparse.WriteMatrixMarket(w, a, comment)
}

// OrderingMethod selects the fill-reducing ordering configuration.
type OrderingMethod int

const (
	// OrderScotchLike is the paper's ordering: nested dissection tightly
	// coupled with Halo Approximate Minimum Degree (default).
	OrderScotchLike OrderingMethod = iota
	// OrderMetisLike is the alternative ND+AMD configuration (PSPASES's
	// default ordering family).
	OrderMetisLike
	// OrderAMD runs approximate minimum degree on the whole graph.
	OrderAMD
	// OrderNatural keeps the given order (testing/diagnostics only).
	OrderNatural
)

// Runtime selects the engine executing the numerical factorization (and
// SolveParallel). All runtimes consume the same analysis and static
// schedule. RuntimeSequential, RuntimeShared and RuntimeDynamic produce
// BITWISE identical factors, solves and perturbation reports (contributions
// are applied in the canonical sequential order); RuntimeMPSim aggregates
// contributions into AUBs — the paper's central mechanism — so it matches
// the others to rounding (~1e-11) and is deterministic run to run, but not
// bit-equal.
type Runtime = solver.Runtime

const (
	// RuntimeAuto (the default) preserves the historical dispatch:
	// shared-memory when Options.SharedMemory is set, sequential at
	// Processors == 1 without tracing or faults, message-passing otherwise.
	RuntimeAuto = solver.RuntimeAuto
	// RuntimeSequential is the right-looking sequential reference.
	RuntimeSequential = solver.RuntimeSequential
	// RuntimeMPSim is the paper-faithful message-passing fan-in/fan-both
	// runtime (goroutine processors exchanging explicit messages).
	RuntimeMPSim = solver.RuntimeMPSim
	// RuntimeShared is the zero-copy shared-memory runtime driven by the
	// static schedule's per-processor task vectors.
	RuntimeShared = solver.RuntimeShared
	// RuntimeDynamic is the work-stealing runtime: the shared-memory data
	// layout with data-driven task activation instead of the fixed
	// task→processor mapping — per-worker ready deques, atomic in-degree
	// countdown, lock-free stealing. Best when the cost model misprices an
	// irregular matrix or the host is contended.
	RuntimeDynamic = solver.RuntimeDynamic
)

// ParseRuntime maps a CLI spelling ("auto", "seq", "mpsim", "shared",
// "dynamic") to its Runtime; errors match ErrBadOptions.
func ParseRuntime(s string) (Runtime, error) {
	rt, err := solver.ParseRuntime(s)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadOptions, err)
	}
	return rt, nil
}

// Options configures Analyze.
type Options struct {
	// Processors is the number of virtual processors the static schedule
	// targets and Factorize runs on (default 1).
	Processors int
	// Ordering selects the ordering configuration (default OrderScotchLike).
	Ordering OrderingMethod
	// LeafSize bounds the nested-dissection leaf subgraphs (default 120).
	LeafSize int
	// BlockSize is the BLAS blocking size used to split wide supernodes
	// (default 64, the paper's setting).
	BlockSize int
	// Ratio2D is the minimum candidate-processor count for a supernode to be
	// distributed 2D (default 4).
	Ratio2D int
	// NoAmalgamation disables relaxed supernode amalgamation.
	NoAmalgamation bool
	// CompressGraph groups indistinguishable vertices before ordering
	// (recommended for multi-DOF finite element problems).
	CompressGraph bool
	// MultilevelND computes separators by multilevel coarsening instead of a
	// single level-set cut (better on irregular graphs).
	MultilevelND bool
	// CalibrateMachine measures this host's kernels to build the scheduling
	// cost model instead of using the deterministic SP2-like profile. Use it
	// when wall-clock parallel speed matters more than reproducibility.
	CalibrateMachine bool
	// SharedMemory executes the factorization (and SolveParallel) with the
	// zero-copy shared-memory runtime: the same static schedule, but direct
	// in-place aggregation into one shared factor instead of message copies
	// between goroutine processors. Faster on a real SMP host; the default
	// message-passing runtime remains the paper-faithful baseline. The
	// factor produced is identical to rounding either way.
	//
	// Deprecated: SharedMemory true is equivalent to Runtime: RuntimeShared,
	// which also admits the other engines. Setting both to conflicting
	// values fails Validate.
	SharedMemory bool
	// Runtime selects the factorization engine: RuntimeAuto (default),
	// RuntimeSequential, RuntimeMPSim, RuntimeShared or RuntimeDynamic. An
	// active fault plan requires the message-passing runtime (RuntimeAuto or
	// RuntimeMPSim); any other combination fails Validate with
	// ErrBadOptions.
	Runtime Runtime
	// Faults injects deterministic message and worker faults into the
	// message-passing runtime and arms its reliability layer (see FaultPlan).
	// Nil or an inactive plan leaves the fault-free fast path untouched. An
	// active plan is incompatible with SharedMemory.
	Faults *FaultPlan
	// StaticPivot enables static pivoting in the numerical factorization:
	// a diagonal pivot with |d| < Epsilon·‖A‖_max is replaced by
	// sign(d)·Epsilon·‖A‖_max and recorded in the factor's
	// PerturbationReport instead of aborting with ErrNotSPD. Epsilon 0 (the
	// default) keeps the historical unpivoted kernels bit for bit; MaxRetries
	// bounds FactorizeRobust's escalation (0 = default 3). The report is
	// identical across the sequential, shared-memory and message-passing
	// runtimes.
	StaticPivot StaticPivotOptions
	// RefineTol is the componentwise backward-error target
	// ‖Ax−b‖∞/(‖A‖∞‖x‖∞+‖b‖∞) of adaptive iterative refinement
	// (SolveRefinedStats, RefineSolution, FactorizeRobust). 0 selects the
	// default 1e-10.
	RefineTol float64
	// BLR enables block low-rank factor compression: every factor the
	// analysis produces is compressed in a post-factorization pass at
	// BLR.Tol (see BLROptions), trading ~Tol solve accuracy — recoverable
	// with SolveOptions.Refine — for factor memory. The zero value (Tol 0)
	// disables compression and keeps every factor bitwise-identical to the
	// dense path. Compressed factors solve on the sequential and level-set
	// engines only, so enabling BLR conflicts with Runtime: RuntimeMPSim and
	// with active fault injection (both fail Validate).
	BLR BLROptions
}

// StaticPivotOptions configures static pivoting (Options.StaticPivot):
// Epsilon is ε_piv in τ = ε_piv·‖A‖_max, MaxRetries bounds FactorizeRobust's
// ε escalation.
type StaticPivotOptions = solver.StaticPivot

// Perturbation records one static-pivot substitution (column in the permuted
// system, original pivot, substituted value).
type Perturbation = solver.Perturbation

// PerturbationReport summarizes the static pivoting of one factorization:
// threshold, substituted columns, and the pivot-growth diagnostic. Identical
// across runtimes for the same matrix and ε_piv.
type PerturbationReport = solver.PerturbationReport

// RefineStats reports an adaptive refinement run: sweeps executed, backward
// error reached, and its full (non-increasing) trajectory.
type RefineStats = solver.RefineStats

// RobustStats reports a FactorizeRobust escalation: attempts, the accepted
// ε_piv, and the probe backward error after refinement.
type RobustStats = solver.RobustStats

// Validate checks the options for consistency. The zero value is always
// valid (every field has a documented default: Processors 1, BlockSize 64,
// Ratio2D 4, LeafSize 120, ordering OrderScotchLike); negative counts and
// unknown ordering methods fail with an error matching ErrBadOptions.
// Analyze calls it, so explicit calls are needed only to validate early.
func (o Options) Validate() error {
	if o.Processors < 0 {
		return fmt.Errorf("%w: Processors %d is negative", ErrBadOptions, o.Processors)
	}
	if o.BlockSize < 0 {
		return fmt.Errorf("%w: BlockSize %d is negative", ErrBadOptions, o.BlockSize)
	}
	if o.Ratio2D < 0 {
		return fmt.Errorf("%w: Ratio2D %d is negative", ErrBadOptions, o.Ratio2D)
	}
	if o.LeafSize < 0 {
		return fmt.Errorf("%w: LeafSize %d is negative", ErrBadOptions, o.LeafSize)
	}
	switch o.Ordering {
	case OrderScotchLike, OrderMetisLike, OrderAMD, OrderNatural:
	default:
		return fmt.Errorf("%w: unknown ordering method %d", ErrBadOptions, o.Ordering)
	}
	if !o.Runtime.Valid() {
		return fmt.Errorf("%w: unknown runtime %d", ErrBadOptions, o.Runtime)
	}
	if o.SharedMemory && o.Runtime != RuntimeAuto && o.Runtime != RuntimeShared {
		return fmt.Errorf("%w: SharedMemory conflicts with Runtime %v", ErrBadOptions, o.Runtime)
	}
	if o.Faults != nil {
		if err := o.Faults.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrBadOptions, err)
		}
		if o.SharedMemory && o.Faults.Active() {
			return fmt.Errorf("%w: fault injection requires the message-passing runtime, not SharedMemory", ErrBadOptions)
		}
		if o.Faults.Active() && o.Runtime != RuntimeAuto && o.Runtime != RuntimeMPSim {
			return fmt.Errorf("%w: fault injection requires the message-passing runtime, not %v", ErrBadOptions, o.Runtime)
		}
	}
	if o.StaticPivot.Epsilon < 0 || o.StaticPivot.Epsilon >= 1 {
		return fmt.Errorf("%w: StaticPivot.Epsilon %g outside [0,1)", ErrBadOptions, o.StaticPivot.Epsilon)
	}
	if o.StaticPivot.MaxRetries < 0 {
		return fmt.Errorf("%w: StaticPivot.MaxRetries %d is negative", ErrBadOptions, o.StaticPivot.MaxRetries)
	}
	if o.RefineTol < 0 {
		return fmt.Errorf("%w: RefineTol %g is negative", ErrBadOptions, o.RefineTol)
	}
	if err := o.BLR.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadOptions, err)
	}
	if o.BLR.Enabled() {
		if o.Runtime == RuntimeMPSim {
			return fmt.Errorf("%w: BLR compression conflicts with Runtime RuntimeMPSim (the message-passing solve needs dense factors)", ErrBadOptions)
		}
		if o.Faults.Active() {
			return fmt.Errorf("%w: BLR compression conflicts with fault injection (the message-passing solve needs dense factors)", ErrBadOptions)
		}
	}
	return nil
}

// Analysis is the reusable result of the pre-processing phases. All methods
// are safe for concurrent use once constructed.
type Analysis struct {
	inner     *solver.Analysis
	runtime   Runtime            // engine for the numerical phases
	faults    *FaultPlan         // fault injection for the numerical phases (nil = off)
	pivot     StaticPivotOptions // static pivoting for the numerical phases
	refineTol float64            // adaptive-refinement target; 0 = default
	blr       BLROptions         // factor compression; zero Tol = disabled
}

// parOpts builds the runtime options every numerical phase of this analysis
// shares.
func (an *Analysis) parOpts() solver.ParOptions {
	return solver.ParOptions{Runtime: an.runtime, Faults: an.faults, Pivot: an.pivot}
}

// Factor holds the numerical factorization L·D·Lᵀ.
type Factor struct {
	inner *solver.Factors
	an    *solver.Analysis
	// pa is the permuted matrix this factor was actually computed from —
	// an.A for Factorize, the request's values for FactorizeValues — so
	// refinement always iterates against the right system.
	pa *sparse.SymMatrix
	// blrConflict, when non-empty, names the analysis configuration that
	// forbids compressing this factor (Factor.Compress reports it).
	blrConflict string
}

// newFactor wraps a freshly factorized solver.Factors, applying the
// analysis's BLR compression pass when configured. Every Factorize* entry
// point funnels through here so compression is uniform across the plain,
// traced, values and robust paths.
func (an *Analysis) newFactor(f *solver.Factors, pa *sparse.SymMatrix) *Factor {
	out := &Factor{inner: f, an: an.inner, pa: pa}
	switch {
	case an.faults.Active():
		out.blrConflict = "fault injection needs dense factors (message-passing solve runtime)"
	case an.runtime == RuntimeMPSim:
		out.blrConflict = "analysis is pinned to RuntimeMPSim, whose solve needs dense factors"
	}
	if an.blr.Enabled() {
		f.Compress(an.blr)
	}
	return out
}

// Perturbations returns the static-pivoting report of this factorization:
// nil when pivoting was disabled, otherwise the (possibly empty) sorted list
// of substituted columns with threshold and pivot-growth diagnostics.
func (f *Factor) Perturbations() *PerturbationReport {
	if f == nil || f.inner == nil {
		return nil
	}
	return f.inner.Pivots
}

// Analyze orders the matrix, computes the block symbolic factorization, and
// builds the static schedule for opts.Processors virtual processors.
func Analyze(a *Matrix, opts Options) (*Analysis, error) {
	return AnalyzeContext(context.Background(), a, opts)
}

// AnalyzeContext is Analyze under a context: the analysis phases are
// sequential CPU-bound passes, so cancellation is observed at phase
// boundaries and ctx.Err() is returned at the first boundary after it.
func AnalyzeContext(ctx context.Context, a *Matrix, opts Options) (*Analysis, error) {
	if a == nil {
		return nil, fmt.Errorf("pastix: nil matrix")
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	var m order.Method
	switch opts.Ordering {
	case OrderScotchLike:
		m = order.ScotchLike
	case OrderMetisLike:
		m = order.MetisLike
	case OrderAMD:
		m = order.PureAMD
	case OrderNatural:
		m = order.Natural
	}
	var mach *cost.Machine
	if opts.CalibrateMachine {
		var err error
		mach, err = cost.CalibrateLocal(false)
		if err != nil {
			return nil, err
		}
	}
	inner, err := solver.AnalyzeCtx(ctx, a, solver.Options{
		P: opts.Processors,
		Ordering: order.Options{
			Method:     m,
			LeafSize:   opts.LeafSize,
			Compress:   opts.CompressGraph,
			Multilevel: opts.MultilevelND,
		},
		Amalgamation: etree.AmalgamateOptions{Disable: opts.NoAmalgamation},
		Part:         part.Options{BlockSize: opts.BlockSize, Ratio2D: opts.Ratio2D},
		Machine:      mach,
	})
	if err != nil {
		return nil, err
	}
	rt := opts.Runtime
	if rt == RuntimeAuto && opts.SharedMemory {
		rt = RuntimeShared
	}
	an := &Analysis{inner: inner, runtime: rt, pivot: opts.StaticPivot, refineTol: opts.RefineTol, blr: opts.BLR}
	if opts.Faults.Active() {
		an.faults = opts.Faults
	}
	return an, nil
}

// SchurComplement eliminates every unknown outside schurVars and returns the
// dense Schur complement S = A_ss − A_si·A_ii⁻¹·A_is (ns×ns column-major,
// full symmetric storage) together with the order of its rows/columns in
// terms of the original indices. This is the building block hybrid
// direct/iterative methods consume (the PaStiX-family Schur API).
func SchurComplement(a *Matrix, schurVars []int, opts Options) ([]float64, []int, error) {
	san, err := solver.AnalyzeSchur(a, schurVars, solver.Options{
		P:        1,
		Ordering: order.Options{LeafSize: opts.LeafSize, Compress: opts.CompressGraph, Multilevel: opts.MultilevelND},
		Part:     part.Options{BlockSize: opts.BlockSize},
	})
	if err != nil {
		return nil, nil, err
	}
	_, s, err := san.FactorizeSchur()
	if err != nil {
		return nil, nil, err
	}
	return s, san.SchurVars, nil
}

// Factorize computes the numerical LDLᵀ factorization: sequentially on one
// processor, or with the schedule-driven parallel runtime — message-passing
// fan-in by default, the zero-copy shared-memory runtime when the analysis
// was built with Options.SharedMemory.
func (an *Analysis) Factorize() (*Factor, error) {
	return an.FactorizeContext(context.Background())
}

// FactorizeContext is Factorize under a context: cancelling ctx aborts the
// parallel runtimes — every worker goroutine unwinds before the call
// returns — and ctx.Err() (context.Canceled or context.DeadlineExceeded)
// is reported.
func (an *Analysis) FactorizeContext(ctx context.Context) (*Factor, error) {
	f, err := an.inner.FactorizeOptsCtx(ctx, an.parOpts())
	if err != nil {
		return nil, err
	}
	return an.newFactor(f, an.inner.A), nil
}

// Solve returns x with A·x = b (original ordering; b is not modified). It is
// SolveOpts with Runtime: RuntimeSequential — the bitwise reference every
// parallel solve engine is measured against.
func (an *Analysis) Solve(f *Factor, b []float64) ([]float64, error) {
	res, err := an.SolveOpts(context.Background(), f, b, SolveOptions{Runtime: RuntimeSequential})
	if err != nil {
		return nil, err
	}
	return res.X, nil
}

// SolveParallel solves A·x = b with the parallel block triangular solves.
// Since the solve-path redesign it is SolveOpts with default options: the
// level-set engine (bitwise-identical to Solve) on the shared-memory data
// layout, the message-passing sweep for analyses pinned to RuntimeMPSim or
// running fault injection.
//
// Deprecated: use SolveOpts, which also exposes multiple right-hand sides,
// refinement and tracing through one call.
func (an *Analysis) SolveParallel(f *Factor, b []float64) ([]float64, error) {
	return an.SolveParallelContext(context.Background(), f, b)
}

// SolveParallelContext is SolveParallel under a context: cancelling ctx
// aborts both sweeps, unwinding every worker goroutine before returning
// ctx.Err().
//
// Deprecated: use SolveOpts.
func (an *Analysis) SolveParallelContext(ctx context.Context, f *Factor, b []float64) ([]float64, error) {
	res, err := an.solveOpts(ctx, f, b, SolveOptions{}, nil)
	if err != nil {
		return nil, err
	}
	return res.X, nil
}

// SolveMany solves A·X = B for nrhs right-hand sides at once (b is an
// n×nrhs column-major panel in the original ordering; the solution panel is
// returned in the same layout). It is SolveOpts with the sequential panel
// kernels pinned.
//
// Deprecated: use SolveOpts with SolveOptions.NRHS, which defaults to the
// parallel level-set engine.
func (an *Analysis) SolveMany(f *Factor, b []float64, nrhs int) ([]float64, error) {
	n := an.inner.A.N
	if f == nil || f.an != an.inner {
		return nil, ErrFactorMismatch
	}
	if nrhs <= 0 || len(b) != n*nrhs {
		return nil, fmt.Errorf("pastix: rhs panel must be n×nrhs = %d×%d: %w", n, nrhs, ErrShape)
	}
	res, err := an.SolveOpts(context.Background(), f, b, SolveOptions{NRHS: nrhs, Runtime: RuntimeSequential})
	if err != nil {
		return nil, err
	}
	return res.X, nil
}

// PatternFingerprint returns a 128-bit hex fingerprint of the sparsity
// pattern of a: the order plus the compressed column pointers and row
// indices (values ignored). Matrices sharing a pattern share a fingerprint,
// so it is the key under which a serving layer can reuse one Analysis —
// the expensive ordering/symbolic/scheduling pass — across many
// factorizations (see internal/service). Stable across runs and platforms.
func PatternFingerprint(a *Matrix) string {
	if a == nil {
		return ""
	}
	return a.PatternFingerprint()
}

// FactorizeValues computes the LDLᵀ factorization of a matrix with the SAME
// sparsity pattern as the analysed one but (possibly) different numerical
// values, reusing this analysis — the amortization the PaStiX
// analysis/factorization split exists for. The pattern is verified (in the
// analysis ordering) and ErrPatternMismatch reported on any difference.
func (an *Analysis) FactorizeValues(ctx context.Context, a *Matrix) (*Factor, error) {
	pa, err := an.permuteSamePattern(a)
	if err != nil {
		return nil, err
	}
	f, err := an.inner.FactorizeMatrixOptsCtx(ctx, pa, an.parOpts())
	if err != nil {
		return nil, err
	}
	return an.newFactor(f, pa), nil
}

// permuteSamePattern permutes a into the analysis ordering after verifying
// it carries exactly the analysed sparsity pattern.
func (an *Analysis) permuteSamePattern(a *Matrix) (*sparse.SymMatrix, error) {
	if a == nil {
		return nil, fmt.Errorf("pastix: nil matrix")
	}
	if a.N != an.inner.A.N || a.NNZ() != an.inner.A.NNZ() {
		return nil, fmt.Errorf("pastix: order %d nnz %d vs analysed %d/%d: %w",
			a.N, a.NNZ(), an.inner.A.N, an.inner.A.NNZ(), ErrPatternMismatch)
	}
	pa := a.Permute(an.inner.Perm)
	if !pa.SamePattern(an.inner.A) {
		return nil, ErrPatternMismatch
	}
	return pa, nil
}

// SolveParallelMany solves A·X = B for nrhs right-hand sides in ONE panel
// sweep of the parallel block triangular solves, so a server coalescing
// concurrent single-RHS requests into a panel pays the solve's
// synchronization latency once instead of nrhs times. b is an n×nrhs
// column-major panel in the original ordering. Since the solve-path redesign
// the panel runs on the engine SolveOpts resolves (the level-set engine by
// default, each column bit-identical to Solve); pin RuntimeMPSim for the
// historical message-passing panel sweep.
//
// Deprecated: use SolveOpts with SolveOptions.NRHS.
func (an *Analysis) SolveParallelMany(f *Factor, b []float64, nrhs int) ([]float64, error) {
	return an.SolveParallelManyContext(context.Background(), f, b, nrhs)
}

// SolveParallelManyContext is SolveParallelMany under a context: cancelling
// ctx aborts both sweeps, unwinding every worker goroutine before returning
// ctx.Err().
//
// Deprecated: use SolveOpts with SolveOptions.NRHS.
func (an *Analysis) SolveParallelManyContext(ctx context.Context, f *Factor, b []float64, nrhs int) ([]float64, error) {
	n := an.inner.A.N
	if f == nil || f.an != an.inner {
		return nil, ErrFactorMismatch
	}
	if nrhs <= 0 || len(b) != n*nrhs {
		return nil, fmt.Errorf("pastix: rhs panel must be n×nrhs = %d×%d: %w", n, nrhs, ErrShape)
	}
	res, err := an.solveOpts(ctx, f, b, SolveOptions{NRHS: nrhs}, nil)
	if err != nil {
		return nil, err
	}
	return res.X, nil
}

// SolveRefined solves A·x = b and applies up to iters steps of iterative
// refinement, stopping early on convergence or stagnation.
//
// Deprecated: SolveRefined discards the convergence information and takes a
// bare iteration count. Use SolveOpts with SolveOptions.Refine, which
// iterates adaptively until the backward-error target is met or stagnates
// and reports the full trajectory. This wrapper remains as that call capped
// at iters sweeps.
func (an *Analysis) SolveRefined(f *Factor, b []float64, iters int) ([]float64, error) {
	if iters <= 0 {
		return an.Solve(f, b)
	}
	res, err := an.SolveOpts(context.Background(), f, b,
		SolveOptions{Runtime: RuntimeSequential, Refine: &RefineOptions{MaxIter: iters}})
	if err != nil {
		return nil, err
	}
	return res.X, nil
}

// SolveRefinedStats solves A·x = b and applies adaptive iterative
// refinement: correction sweeps run until the componentwise backward error
// ‖Ax−b‖∞/(‖A‖∞‖x‖∞+‖b‖∞) meets Options.RefineTol (default 1e-10) or
// stagnates. The returned RefineStats carries the sweep count and the
// non-increasing backward-error trajectory.
//
// Deprecated: use SolveOpts with SolveOptions.Refine.
func (an *Analysis) SolveRefinedStats(f *Factor, b []float64) ([]float64, RefineStats, error) {
	res, err := an.SolveOpts(context.Background(), f, b,
		SolveOptions{Runtime: RuntimeSequential, Refine: &RefineOptions{}})
	if err != nil {
		return nil, RefineStats{}, err
	}
	return res.X, *res.Refine, nil
}

// RefineSolution applies adaptive iterative refinement to an existing
// solution x of A·x = b (both in the original ordering), improving it in
// place of a fresh solve — the repair step degraded-mode serving runs on
// solutions of perturbed factors. Semantics match SolveRefinedStats.
func (an *Analysis) RefineSolution(f *Factor, b, x []float64) ([]float64, RefineStats, error) {
	if f == nil || f.an != an.inner {
		return nil, RefineStats{}, ErrFactorMismatch
	}
	n := an.inner.A.N
	if len(b) != n || len(x) != n {
		return nil, RefineStats{}, fmt.Errorf("pastix: rhs/solution length %d/%d, matrix order %d: %w", len(b), len(x), n, ErrShape)
	}
	return an.refineOriginal(f, b, x, 0)
}

// refineOriginal runs adaptive refinement in the permuted system against the
// matrix f was actually factored from, permuting b/x in and the improved
// solution back out. maxIter <= 0 uses the adaptive default.
func (an *Analysis) refineOriginal(f *Factor, b, x []float64, maxIter int) ([]float64, RefineStats, error) {
	pa := f.pa
	if pa == nil {
		pa = an.inner.A
	}
	pb := make([]float64, len(b))
	px := make([]float64, len(x))
	for newI, old := range an.inner.Perm {
		pb[newI] = b[old]
		px[newI] = x[old]
	}
	px, stats := f.inner.RefineAdaptive(pa, pb, px, an.refineTol, maxIter)
	out := make([]float64, len(x))
	for newI, old := range an.inner.Perm {
		out[old] = px[newI]
	}
	return out, stats, nil
}

// FactorizeRobust is Factorize with escalating static pivoting: the first
// attempt runs with Options.StaticPivot as configured (unpivoted when
// Epsilon is 0); if factorization breaks down (ErrNotSPD) or a probe solve
// cannot be refined to Options.RefineTol, it retries with ε_piv escalated
// ×100 (starting from 1e-12), up to StaticPivot.MaxRetries times (0 =
// default 3). On exhaustion the error matches ErrPivotExhausted and carries
// the final state.
func (an *Analysis) FactorizeRobust(ctx context.Context) (*Factor, RobustStats, error) {
	f, rs, err := an.inner.FactorizeRobust(ctx, an.inner.A, an.parOpts(), an.refineTol)
	if err != nil {
		return nil, rs, err
	}
	return an.newFactor(f, an.inner.A), rs, nil
}

// FactorizeValuesRobust is FactorizeRobust for a matrix sharing the analysed
// sparsity pattern (see FactorizeValues): the escalation runs against the
// request's values, not the analysed ones.
func (an *Analysis) FactorizeValuesRobust(ctx context.Context, a *Matrix) (*Factor, RobustStats, error) {
	pa, err := an.permuteSamePattern(a)
	if err != nil {
		return nil, RobustStats{}, err
	}
	f, rs, err := an.inner.FactorizeRobust(ctx, pa, an.parOpts(), an.refineTol)
	if err != nil {
		return nil, rs, err
	}
	return an.newFactor(f, pa), rs, nil
}

// Stats summarises the analysis for reporting.
type Stats struct {
	N            int     // matrix order
	NNZA         int     // off-diagonal entries of the triangular part of A
	ScalarNNZL   int64   // strictly-lower nonzeros of L (scalar count)
	ScalarOPC    float64 // scalar factorization operation count
	BlockNNZL    int64   // stored factor entries (block model)
	ColumnBlocks int     // supernodes after splitting
	Tasks        int     // static-schedule tasks
	Cells2D      int     // supernodes with a 2D distribution
	Processors   int
	// PredictedTime is the modelled parallel factorization time (seconds) on
	// the analysis machine profile.
	PredictedTime float64
	// LoadImbalance is max/mean modelled busy time across processors.
	LoadImbalance float64
	// CommVolume is the modelled cross-processor traffic in bytes.
	CommVolume int64
	// MaxMemoryPerProc is the largest per-processor factor storage in bytes
	// under the schedule's data distribution.
	MaxMemoryPerProc int64
}

// Stats reports the analysis metrics (the quantities of the paper's tables).
func (an *Analysis) Stats() Stats {
	st := an.inner.Sched.ComputeStats()
	var maxMem int64
	for _, m := range an.inner.Sched.MemoryPerProc() {
		if m > maxMem {
			maxMem = m
		}
	}
	return Stats{
		N:                an.inner.A.N,
		NNZA:             an.inner.A.NNZOffDiag(),
		ScalarNNZL:       an.inner.ScalarNNZL,
		ScalarOPC:        an.inner.ScalarOPC,
		BlockNNZL:        an.inner.Sym.NNZL(),
		ColumnBlocks:     an.inner.Sym.NumCB(),
		Tasks:            st.NTasks,
		Cells2D:          st.N2DCells,
		Processors:       an.inner.Sched.P,
		PredictedTime:    an.inner.PredictedTime(),
		LoadImbalance:    st.LoadImbalance,
		CommVolume:       st.CommVolume,
		MaxMemoryPerProc: maxMem,
	}
}

// Residual returns the scaled residual ‖Ax−b‖∞/(‖A‖₁‖x‖∞+‖b‖∞).
func Residual(a *Matrix, x, b []float64) float64 { return sparse.Residual(a, x, b) }

// --- Complex symmetric systems (the paper's motivating class) ---

// ZMatrix is a complex SYMMETRIC (A = Aᵀ, not Hermitian) sparse matrix.
type ZMatrix = sparse.ZSymMatrix

// ZBuilder assembles a ZMatrix from triplets.
type ZBuilder = sparse.ZBuilder

// NewZBuilder returns a builder for an n×n complex symmetric matrix.
func NewZBuilder(n int) *ZBuilder { return sparse.NewZBuilder(n) }

// ZFactor holds a complex LDLᵀ factorization.
type ZFactor struct {
	inner *solver.ZFactors
	an    *solver.Analysis
}

// AnalyzeComplex runs the analysis on the sparsity pattern of az (ordering,
// symbolic factorization and scheduling are value-type independent).
func AnalyzeComplex(az *ZMatrix, opts Options) (*Analysis, error) {
	if az == nil {
		return nil, fmt.Errorf("pastix: nil matrix")
	}
	if err := az.Validate(); err != nil {
		return nil, err
	}
	return Analyze(az.Pattern(), opts)
}

// FactorizeComplex computes the complex symmetric LDLᵀ factorization of az,
// whose pattern must match the analysed matrix. With more than one processor
// the schedule-driven parallel fan-in runtime is used.
func (an *Analysis) FactorizeComplex(az *ZMatrix) (*ZFactor, error) {
	if az == nil || az.N != an.inner.A.N {
		return nil, fmt.Errorf("pastix: complex matrix shape mismatch: %w", ErrShape)
	}
	paz := az.Permute(an.inner.Perm)
	var zf *solver.ZFactors
	var err error
	if an.inner.Sched.P == 1 {
		zf, err = solver.FactorizeZSeq(paz, an.inner.Sym)
	} else {
		zf, err = solver.FactorizeZPar(paz, an.inner.Sched)
	}
	if err != nil {
		return nil, err
	}
	return &ZFactor{inner: zf, an: an.inner}, nil
}

// SolveComplex solves A·x = b for the complex system (original ordering).
func (an *Analysis) SolveComplex(f *ZFactor, b []complex128) ([]complex128, error) {
	if f == nil || f.an != an.inner {
		return nil, ErrFactorMismatch
	}
	if len(b) != an.inner.A.N {
		return nil, fmt.Errorf("pastix: rhs length %d, matrix order %d: %w", len(b), an.inner.A.N, ErrShape)
	}
	pb := make([]complex128, len(b))
	for newI, old := range an.inner.Perm {
		pb[newI] = b[old]
	}
	px := f.inner.Solve(pb)
	x := make([]complex128, len(b))
	for newI, old := range an.inner.Perm {
		x[old] = px[newI]
	}
	return x, nil
}

// ReadMatrixMarketComplex parses a complex symmetric coordinate Matrix
// Market stream.
func ReadMatrixMarketComplex(r io.Reader) (*ZMatrix, error) {
	return sparse.ReadMatrixMarketComplex(r)
}

// WriteMatrixMarketComplex writes a complex symmetric matrix in coordinate
// Matrix Market format.
func WriteMatrixMarketComplex(w io.Writer, a *ZMatrix, comment string) error {
	return sparse.WriteMatrixMarketComplex(w, a, comment)
}

// ZResidual returns the scaled residual of a complex system.
func ZResidual(a *ZMatrix, x, b []complex128) float64 { return sparse.ZResidual(a, x, b) }

// WriteScheduleGantt renders a textual Gantt chart of the static schedule
// (one row per processor, time binned into width columns).
func (an *Analysis) WriteScheduleGantt(w io.Writer, width int) error {
	return an.inner.Sched.WriteGantt(w, width)
}

// WriteScheduleCSV dumps the static schedule as CSV (one row per task:
// rank, processor, type, cell, block indices, modelled start/end times).
func (an *Analysis) WriteScheduleCSV(w io.Writer) error {
	return an.inner.Sched.WriteCSV(w)
}

// PhaseTimes returns the analysis phase durations: ordering,
// elimination-tree/supernode work, block symbolic factorization, and
// mapping+scheduling.
func (an *Analysis) PhaseTimes() [4]time.Duration {
	return [4]time.Duration{
		an.inner.OrderTime, an.inner.TreeTime, an.inner.SymbolicTime, an.inner.SchedTime,
	}
}

// WriteScheduleSummary prints a human-readable account of the schedule:
// task mix, load/memory balance, communication volume and the critical-path
// composition.
func (an *Analysis) WriteScheduleSummary(w io.Writer) error {
	return an.inner.Sched.WriteSummary(w)
}
