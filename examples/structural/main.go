// Structural mechanics: assemble a shell-like stiffness system (the class of
// the paper's PARASOL ship problems — a 2D surface mesh with several degrees
// of freedom per node), compare the two ordering configurations of Table 1,
// and factor with the parallel solver.
//
//	go run ./examples/structural -nx 40 -dof 6 -p 8
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/pastix-go/pastix"
)

// buildShell assembles an SPD matrix for an nx×nx shell of quad elements
// (9-point node stencil) with dof unknowns per node, mimicking a ship hull
// panel: all DOFs of a node couple to each other and to all DOFs of
// neighbouring nodes.
func buildShell(nx, dof int) *pastix.Matrix {
	n := nx * nx * dof
	b := pastix.NewBuilder(n)
	node := func(i, j int) int { return i + j*nx }
	rowAbs := make([]float64, n)
	couple := func(u, v int, w float64) {
		for a := 0; a < dof; a++ {
			for c := 0; c < dof; c++ {
				i, j := u*dof+a, v*dof+c
				if i == j {
					continue
				}
				if u == v && a > c {
					continue // add intra-node pairs once
				}
				b.Add(i, j, -w)
				rowAbs[i] += w
				rowAbs[j] += w
			}
		}
	}
	for j := 0; j < nx; j++ {
		for i := 0; i < nx; i++ {
			u := node(i, j)
			couple(u, u, 0.5)
			for dj := 0; dj <= 1; dj++ {
				for di := -1; di <= 1; di++ {
					if dj == 0 && di <= 0 {
						continue
					}
					ii, jj := i+di, j+dj
					if ii < 0 || ii >= nx || jj >= nx {
						continue
					}
					couple(u, node(ii, jj), 1)
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		b.Add(i, i, rowAbs[i]+1) // strict diagonal dominance → SPD
	}
	return b.Build()
}

func main() {
	log.SetFlags(0)
	nx := flag.Int("nx", 40, "shell nodes per side")
	dof := flag.Int("dof", 6, "degrees of freedom per node")
	procs := flag.Int("p", 8, "virtual processors")
	flag.Parse()

	a := buildShell(*nx, *dof)
	fmt.Printf("shell %dx%d, %d dof/node: n=%d, nnz_A=%d\n", *nx, *nx, *dof, a.N, a.NNZOffDiag())

	// Table-1-style ordering comparison.
	for _, cfg := range []struct {
		name   string
		method pastix.OrderingMethod
	}{
		{"scotch-like (ND+HAMD)", pastix.OrderScotchLike},
		{"metis-like  (ND+AMD) ", pastix.OrderMetisLike},
	} {
		an, err := pastix.Analyze(a, pastix.Options{Processors: 1, Ordering: cfg.method})
		if err != nil {
			log.Fatal(err)
		}
		st := an.Stats()
		fmt.Printf("  %s: NNZ_L=%9d  OPC=%.3e\n", cfg.name, st.ScalarNNZL, st.ScalarOPC)
	}

	// Parallel factorization + solve with the default (Scotch-like) setup.
	an, err := pastix.Analyze(a, pastix.Options{Processors: *procs})
	if err != nil {
		log.Fatal(err)
	}
	st := an.Stats()
	fmt.Printf("schedule: %d tasks on %d processors, %d column blocks (%d 2D), predicted %.3fs\n",
		st.Tasks, st.Processors, st.ColumnBlocks, st.Cells2D, st.PredictedTime)

	start := time.Now()
	f, err := an.Factorize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("factorize: %.3fs wall on %d goroutine processors\n", time.Since(start).Seconds(), *procs)

	// Unit load on every DOF.
	rhs := make([]float64, a.N)
	for i := range rhs {
		rhs[i] = 1
	}
	x, err := an.Solve(f, rhs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solve: residual %.2e\n", pastix.Residual(a, x, rhs))
	fmt.Println("OK")
}
