// Scaling study: sweep the processor count on one problem and print the
// predicted parallel factorization times and speedups from the static
// schedule — a single-problem slice of the paper's Table 2 — next to the
// executed wall-clock times on this host's goroutine processors.
//
//	go run ./examples/scaling -n 24
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"github.com/pastix-go/pastix"
)

func main() {
	log.SetFlags(0)
	size := flag.Int("n", 20, "3D grid points per side")
	flag.Parse()

	nx := *size
	n := nx * nx * nx
	idx := func(i, j, k int) int { return i + j*nx + k*nx*nx }
	b := pastix.NewBuilder(n)
	for k := 0; k < nx; k++ {
		for j := 0; j < nx; j++ {
			for i := 0; i < nx; i++ {
				v := idx(i, j, k)
				b.Add(v, v, 6.05)
				if i+1 < nx {
					b.Add(v, idx(i+1, j, k), -1)
				}
				if j+1 < nx {
					b.Add(v, idx(i, j+1, k), -1)
				}
				if k+1 < nx {
					b.Add(v, idx(i, j, k+1), -1)
				}
			}
		}
	}
	a := b.Build()
	fmt.Printf("3D Poisson %d^3 (n=%d), host has %d cores\n", nx, n, runtime.NumCPU())
	fmt.Printf("%4s %14s %10s %14s %10s\n", "P", "model time", "model S(P)", "wall time", "wall S(P)")

	var modelBase, wallBase float64
	for _, p := range []int{1, 2, 4, 8, 16, 32, 64} {
		an, err := pastix.Analyze(a, pastix.Options{Processors: p})
		if err != nil {
			log.Fatal(err)
		}
		st := an.Stats()

		var wall float64
		if p <= 2*runtime.NumCPU() {
			start := time.Now()
			if _, err := an.Factorize(); err != nil {
				log.Fatal(err)
			}
			wall = time.Since(start).Seconds()
		}

		if p == 1 {
			modelBase, wallBase = st.PredictedTime, wall
		}
		wallStr, speedStr := "-", "-"
		if wall > 0 {
			wallStr = fmt.Sprintf("%.3fs", wall)
			speedStr = fmt.Sprintf("%.2f", wallBase/wall)
		}
		fmt.Printf("%4d %13.3fs %10.2f %14s %10s\n",
			p, st.PredictedTime, modelBase/st.PredictedTime, wallStr, speedStr)
	}
	fmt.Println("model time: replayed static-schedule makespan on the SP2-like profile")
	fmt.Println("wall time : executed fan-in factorization on goroutine processors (shown up to 2x host cores)")
}
