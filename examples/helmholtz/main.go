// Helmholtz: solve a complex symmetric system — the paper's motivating
// application class ("we use LDLᵀ factorization in order to solve sparse
// systems with complex coefficients"). A damped 2D Helmholtz operator
// (−Δ − k² + iαk) is complex symmetric but not Hermitian, so neither LLᵀ nor
// a Hermitian LDLᴴ applies: exactly the case for complex LDLᵀ without
// pivoting.
//
//	go run ./examples/helmholtz -n 48 -p 4
package main

import (
	"flag"
	"fmt"
	"log"
	"math/cmplx"

	"github.com/pastix-go/pastix"
)

func main() {
	log.SetFlags(0)
	size := flag.Int("n", 48, "grid points per side")
	procs := flag.Int("p", 4, "virtual processors")
	wave := flag.Float64("k", 0.8, "wavenumber (per grid spacing)")
	damp := flag.Float64("alpha", 0.6, "damping (keeps the unpivoted LDLᵀ stable)")
	flag.Parse()

	nx := *size
	n := nx * nx
	idx := func(i, j int) int { return i + j*nx }
	k2 := complex(*wave**wave, *damp**wave) // −k² + iαk shift, sign folded below

	b := pastix.NewZBuilder(n)
	for j := 0; j < nx; j++ {
		for i := 0; i < nx; i++ {
			v := idx(i, j)
			// 5-point −Δ plus the complex shift; the imaginary part keeps all
			// pivots away from zero (damped time-harmonic wave problem).
			b.Add(v, v, 4-k2+complex(0.05, 0))
			if i+1 < nx {
				b.Add(v, idx(i+1, j), -1)
			}
			if j+1 < nx {
				b.Add(v, idx(i, j+1), -1)
			}
		}
	}
	a := b.Build()

	an, err := pastix.AnalyzeComplex(a, pastix.Options{Processors: *procs})
	if err != nil {
		log.Fatal(err)
	}
	st := an.Stats()
	fmt.Printf("Helmholtz %dx%d (n=%d, k=%.2f, α=%.2f): nnz(L)=%d, %d tasks on %d processors\n",
		nx, nx, n, *wave, *damp, st.ScalarNNZL, st.Tasks, st.Processors)

	zf, err := an.FactorizeComplex(a)
	if err != nil {
		log.Fatal(err)
	}

	// Point source in the centre; solve for the complex field.
	rhs := make([]complex128, n)
	rhs[idx(nx/2, nx/2)] = 1
	x, err := an.SolveComplex(zf, rhs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("residual %.2e\n", pastix.ZResidual(a, x, rhs))

	// The field must decay away from the source (damping): compare |x| at
	// the source's neighbour vs the far corner.
	near := cmplx.Abs(x[idx(nx/2+1, nx/2)])
	far := cmplx.Abs(x[idx(1, 1)])
	fmt.Printf("|x| near source %.3e, far corner %.3e\n", near, far)
	if far > near {
		log.Fatal("damped field does not decay away from the source")
	}
	if pastix.ZResidual(a, x, rhs) > 1e-10 {
		log.Fatal("residual too large")
	}
	fmt.Println("OK")
}
