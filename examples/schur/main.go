// Schur: domain-decomposition workflow on top of the solver — split a grid
// into two subdomains by an interface, form the interface Schur complement
// with the sparse solver (the PaStiX-family API hybrid methods build on),
// solve the small dense interface system, and back-substitute.
//
//	go run ./examples/schur -n 24
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"github.com/pastix-go/pastix"
)

func main() {
	log.SetFlags(0)
	size := flag.Int("n", 24, "grid points per side")
	flag.Parse()
	nx := *size
	n := nx * nx
	idx := func(i, j int) int { return i + j*nx }

	b := pastix.NewBuilder(n)
	for j := 0; j < nx; j++ {
		for i := 0; i < nx; i++ {
			v := idx(i, j)
			b.Add(v, v, 4.02)
			if i+1 < nx {
				b.Add(v, idx(i+1, j), -1)
			}
			if j+1 < nx {
				b.Add(v, idx(i, j+1), -1)
			}
		}
	}
	a := b.Build()

	// Interface: the middle grid column separates left and right subdomains.
	var iface []int
	mid := nx / 2
	for j := 0; j < nx; j++ {
		iface = append(iface, idx(mid, j))
	}

	s, vars, err := pastix.SchurComplement(a, iface, pastix.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ns := len(vars)
	fmt.Printf("grid %dx%d: interface of %d unknowns, Schur complement %dx%d\n", nx, nx, ns, ns, ns)

	// Reference: solve the full system directly.
	an, err := pastix.Analyze(a, pastix.Options{Processors: 4})
	if err != nil {
		log.Fatal(err)
	}
	f, err := an.Factorize()
	if err != nil {
		log.Fatal(err)
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = 1
	}
	xFull, err := an.Solve(f, rhs)
	if err != nil {
		log.Fatal(err)
	}

	// Schur route for the interface values: x_s solves
	// S·x_s = b_s − A_si·A_ii⁻¹·b_i. Build the interior system A_ii
	// explicitly, solve it for w = A_ii⁻¹ b_i, and form the reduced rhs.
	isIface := make([]bool, n)
	for _, v := range vars {
		isIface[v] = true
	}
	intIdx := make([]int, 0, n-ns) // interior global ids
	glob2int := make([]int, n)
	for v := 0; v < n; v++ {
		glob2int[v] = -1
		if !isIface[v] {
			glob2int[v] = len(intIdx)
			intIdx = append(intIdx, v)
		}
	}
	ib := pastix.NewBuilder(len(intIdx))
	for j := 0; j < n; j++ {
		if isIface[j] {
			continue
		}
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			if !isIface[i] {
				ib.Add(glob2int[i], glob2int[j], a.Val[p])
			}
		}
	}
	aii := ib.Build()
	anI, err := pastix.Analyze(aii, pastix.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fI, err := anI.Factorize()
	if err != nil {
		log.Fatal(err)
	}
	bi := make([]float64, len(intIdx))
	for li, v := range intIdx {
		bi[li] = rhs[v]
	}
	w, err := anI.Solve(fI, bi)
	if err != nil {
		log.Fatal(err)
	}
	// g = b_s − (A·[w;0])_s.
	wFull := make([]float64, n)
	for li, v := range intIdx {
		wFull[v] = w[li]
	}
	aw := make([]float64, n)
	a.MatVec(wFull, aw)
	g := make([]float64, ns)
	for i, v := range vars {
		g[i] = rhs[v] - aw[v]
	}
	// Dense solve S x_s = g (S is SPD and small).
	xs := solveDense(s, g)

	maxErr := 0.0
	for i, v := range vars {
		if e := math.Abs(xs[i] - xFull[v]); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("max |x_schur − x_direct| on the interface: %.3e\n", maxErr)
	if maxErr > 1e-8 {
		log.Fatal("schur route disagrees with the direct solve")
	}
	fmt.Println("OK")
}

// solveDense solves S·x = g for SPD S (ns×ns column-major) by unpivoted
// Cholesky-free Gaussian elimination — fine for a small dense interface.
func solveDense(s []float64, g []float64) []float64 {
	ns := len(g)
	m := append([]float64(nil), s...)
	x := append([]float64(nil), g...)
	for k := 0; k < ns; k++ {
		piv := m[k+k*ns]
		for i := k + 1; i < ns; i++ {
			r := m[i+k*ns] / piv
			if r == 0 {
				continue
			}
			for j := k; j < ns; j++ {
				m[i+j*ns] -= r * m[k+j*ns]
			}
			x[i] -= r * x[k]
		}
	}
	for k := ns - 1; k >= 0; k-- {
		for j := k + 1; j < ns; j++ {
			x[k] -= m[k+j*ns] * x[j]
		}
		x[k] /= m[k+k*ns]
	}
	return x
}
