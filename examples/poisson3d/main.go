// Poisson 3D: solve a 7-point finite-difference Poisson problem on a cube —
// the workload class where nested dissection and 2D block distribution pay
// off most — and verify that the parallel factorization agrees with the
// sequential one.
//
//	go run ./examples/poisson3d -n 20 -p 8
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	"github.com/pastix-go/pastix"
)

func main() {
	log.SetFlags(0)
	size := flag.Int("n", 16, "grid points per side")
	procs := flag.Int("p", 8, "virtual processors")
	flag.Parse()

	nx := *size
	n := nx * nx * nx
	idx := func(i, j, k int) int { return i + j*nx + k*nx*nx }
	b := pastix.NewBuilder(n)
	for k := 0; k < nx; k++ {
		for j := 0; j < nx; j++ {
			for i := 0; i < nx; i++ {
				v := idx(i, j, k)
				b.Add(v, v, 6.05)
				if i+1 < nx {
					b.Add(v, idx(i+1, j, k), -1)
				}
				if j+1 < nx {
					b.Add(v, idx(i, j+1, k), -1)
				}
				if k+1 < nx {
					b.Add(v, idx(i, j, k+1), -1)
				}
			}
		}
	}
	a := b.Build()

	// Right-hand side: point source in the middle of the cube.
	rhs := make([]float64, n)
	rhs[idx(nx/2, nx/2, nx/2)] = 1

	solveWith := func(p int) ([]float64, pastix.Stats, time.Duration) {
		an, err := pastix.Analyze(a, pastix.Options{Processors: p})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		f, err := an.Factorize()
		if err != nil {
			log.Fatal(err)
		}
		dt := time.Since(start)
		x, err := an.Solve(f, rhs)
		if err != nil {
			log.Fatal(err)
		}
		return x, an.Stats(), dt
	}

	xSeq, st, tSeq := solveWith(1)
	fmt.Printf("Poisson 3D %d^3: n=%d, nnz(L)=%d, OPC=%.2e\n", nx, n, st.ScalarNNZL, st.ScalarOPC)
	fmt.Printf("P=1: factor %.3fs, residual %.2e\n", tSeq.Seconds(), pastix.Residual(a, xSeq, rhs))

	xPar, stp, tPar := solveWith(*procs)
	maxDiff := 0.0
	for i := range xSeq {
		if d := math.Abs(xSeq[i] - xPar[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("P=%d: factor %.3fs wall (%d tasks, %d 2D blocks), residual %.2e\n",
		*procs, tPar.Seconds(), stp.Tasks, stp.Cells2D, pastix.Residual(a, xPar, rhs))
	fmt.Printf("max |x_seq - x_par| = %.3e (identical to rounding)\n", maxDiff)
	if maxDiff > 1e-10 {
		log.Fatal("parallel solution diverged from sequential")
	}
	fmt.Println("OK")
}
