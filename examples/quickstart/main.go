// Quickstart: assemble a small SPD system, factor it with PaStiX, solve, and
// check the answer.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/pastix-go/pastix"
)

func main() {
	// 2D Poisson equation on a 32×32 grid, 5-point stencil: the "hello
	// world" of sparse direct solvers.
	const nx, ny = 32, 32
	n := nx * ny
	idx := func(i, j int) int { return i + j*nx }

	b := pastix.NewBuilder(n)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			v := idx(i, j)
			b.Add(v, v, 4)
			if i+1 < nx {
				b.Add(v, idx(i+1, j), -1)
			}
			if j+1 < ny {
				b.Add(v, idx(i, j+1), -1)
			}
		}
	}
	// Dirichlet-like shift keeps the matrix strictly positive definite.
	for v := 0; v < n; v++ {
		b.Add(v, v, 0.01)
	}
	a := b.Build()

	// Analyze once (ordering, symbolic factorization, static schedule), then
	// factor and solve. Processors > 1 runs the parallel fan-in solver.
	an, err := pastix.Analyze(a, pastix.Options{Processors: 4})
	if err != nil {
		log.Fatal(err)
	}
	f, err := an.Factorize()
	if err != nil {
		log.Fatal(err)
	}

	// Manufactured solution: x*[v] = sin-like profile; b = A·x*.
	xstar := make([]float64, n)
	for v := range xstar {
		xstar[v] = math.Sin(float64(v) * 0.05)
	}
	rhs := make([]float64, n)
	a.MatVec(xstar, rhs)

	x, err := an.Solve(f, rhs)
	if err != nil {
		log.Fatal(err)
	}

	maxErr := 0.0
	for v := range x {
		if e := math.Abs(x[v] - xstar[v]); e > maxErr {
			maxErr = e
		}
	}
	st := an.Stats()
	fmt.Printf("n=%d  nnz(A)=%d  nnz(L)=%d  OPC=%.2e\n", st.N, st.NNZA, st.ScalarNNZL, st.ScalarOPC)
	fmt.Printf("column blocks: %d (%d distributed 2D), %d scheduled tasks on %d processors\n",
		st.ColumnBlocks, st.Cells2D, st.Tasks, st.Processors)
	fmt.Printf("max |x - x*| = %.3e, scaled residual = %.3e\n",
		maxErr, pastix.Residual(a, x, rhs))
	if maxErr > 1e-8 {
		log.Fatal("solution inaccurate")
	}
	fmt.Println("OK")
}
