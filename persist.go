package pastix

import (
	"fmt"

	"github.com/pastix-go/pastix/internal/solver"
)

// FactorPayload is the serializable numerical content of a Factor — the
// dense or BLR-compressed cell values plus the static-pivot report. It is
// produced by Factor.ExportPayload and consumed by Analysis.RestoreFactor;
// the durable store (internal/store) gives it a versioned, CRC-checked
// binary encoding. A payload carries no structure: restoring one requires
// an Analysis of the same pattern built under the same Options, which the
// deterministic analysis pipeline guarantees reproduces the exact Symbol
// the payload's cells were shaped by.
type FactorPayload = solver.FactorPayload

// ExportPayload lifts the factor's numerical content into a FactorPayload
// for persistence or transfer. The payload aliases the factor's immutable
// storage; serialize it before mutating anything.
func (f *Factor) ExportPayload() (*FactorPayload, error) {
	if f == nil || f.inner == nil {
		return nil, fmt.Errorf("pastix: export of nil factor")
	}
	return f.inner.ExportPayload(), nil
}

// RestoreFactor rebuilds a Factor from a persisted payload and the matrix it
// was factorized from, without refactorizing: the cell values are adopted
// verbatim, so solves against the restored factor are bitwise-identical to
// solves against the original. The matrix must carry the analysed pattern
// (ErrPatternMismatch otherwise) and the same values the factor was computed
// from — it binds the refinement path, exactly as in FactorizeValues. The
// payload's storage form is final: an analysis-level BLR option does NOT
// re-compress a restored dense factor, and a compressed payload stays
// compressed.
func (an *Analysis) RestoreFactor(a *Matrix, p *FactorPayload) (*Factor, error) {
	if p == nil {
		return nil, fmt.Errorf("pastix: restore from nil payload")
	}
	pa, err := an.permuteSamePattern(a)
	if err != nil {
		return nil, err
	}
	inner, err := solver.ImportFactors(an.inner.Sym, p)
	if err != nil {
		return nil, err
	}
	out := &Factor{inner: inner, an: an.inner, pa: pa}
	switch {
	case an.faults.Active():
		out.blrConflict = "fault injection needs dense factors (message-passing solve runtime)"
	case an.runtime == RuntimeMPSim:
		out.blrConflict = "analysis is pinned to RuntimeMPSim, whose solve needs dense factors"
	}
	return out, nil
}
