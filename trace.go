package pastix

import (
	"context"
	"io"
	"time"

	"github.com/pastix-go/pastix/internal/sched"
	"github.com/pastix-go/pastix/internal/trace"
)

// TraceOptions configures execution tracing.
type TraceOptions struct {
	// Buffer is the per-processor event-buffer capacity hint (events, not
	// bytes). Zero selects a size derived from the schedule so the common
	// case never reallocates mid-run.
	Buffer int
}

// Trace holds the events recorded during one traced factorization (and any
// traced solves run against it): per-task execution intervals, message
// traffic, aggregation-buffer spills and runtime phases. It is not safe for
// use before the traced call has returned.
type Trace struct {
	rec *trace.Recorder
	sch *sched.Schedule
	// free marks a trace from the dynamic work-stealing runtime: tasks ran
	// on whichever worker won them, so divergence reports compare with
	// trace.CompareOptions.FreeMapping instead of erroring on the
	// task→processor mismatch.
	free bool
}

// FactorizeTraced is FactorizeContext with execution tracing: the numerical
// factorization runs with a recorder attached (both the message-passing and
// the shared-memory runtime are instrumented) and the recorded events are
// returned alongside the factor. On one processor the schedule-driven
// runtime is used instead of the plain sequential code so every schedule
// task still gets an event.
func (an *Analysis) FactorizeTraced(ctx context.Context, topts TraceOptions) (*Factor, *Trace, error) {
	return an.factorizeTraced(ctx, an.inner.A, topts)
}

// FactorizeValuesTraced is FactorizeValues with execution tracing: it
// factorizes a matrix sharing the analysed pattern (ErrPatternMismatch
// otherwise) and returns the recorded events alongside the factor, so a
// serving layer reusing one analysis across many factorizations can feed
// each run's Trace.Summary into its metrics.
func (an *Analysis) FactorizeValuesTraced(ctx context.Context, a *Matrix, topts TraceOptions) (*Factor, *Trace, error) {
	pa, err := an.permuteSamePattern(a)
	if err != nil {
		return nil, nil, err
	}
	return an.factorizeTraced(ctx, pa, topts)
}

func (an *Analysis) factorizeTraced(ctx context.Context, pa *Matrix, topts TraceOptions) (*Factor, *Trace, error) {
	sch := an.inner.Sched
	cap := topts.Buffer
	if cap <= 0 {
		// Tasks plus their message and phase events, split across processors.
		cap = 4*len(sch.Tasks)/sch.P + 64
	}
	rec := trace.New(sch.P, cap)
	popts := an.parOpts()
	popts.Trace = rec
	f, err := an.inner.FactorizeMatrixOptsCtx(ctx, pa, popts)
	if err != nil {
		return nil, nil, err
	}
	return an.newFactor(f, pa),
		&Trace{rec: rec, sch: sch, free: an.runtime == RuntimeDynamic}, nil
}

// SolveParallelTraced is SolveParallelContext recording the solve's phase
// and message events into tr (typically the trace of the factorization the
// factor came from), so one trace file can show the whole run.
func (an *Analysis) SolveParallelTraced(ctx context.Context, f *Factor, b []float64, tr *Trace) ([]float64, error) {
	var rec *trace.Recorder
	if tr != nil {
		rec = tr.rec
	}
	res, err := an.solveOpts(ctx, f, b, SolveOptions{}, rec)
	if err != nil {
		return nil, err
	}
	return res.X, nil
}

// WriteChromeTrace writes the recorded events in the Chrome trace-event JSON
// format: open the file at chrome://tracing or https://ui.perfetto.dev. Each
// virtual processor is one timeline row; tasks and phases are duration
// events, messages and spills instant events.
func (t *Trace) WriteChromeTrace(w io.Writer) error { return t.rec.WriteChromeTrace(w) }

// WriteReport writes the human-readable predicted-vs-actual divergence
// report: makespans, model error, load balance, critical path and traffic.
// It fails if the trace does not cover every schedule task (e.g. the run was
// cancelled).
func (t *Trace) WriteReport(w io.Writer) error {
	rp, err := trace.CompareOpts(t.sch, t.rec, trace.CompareOptions{FreeMapping: t.free})
	if err != nil {
		return err
	}
	return rp.Write(w)
}

// TraceSummary is the machine-readable digest of a traced execution joined
// against the static schedule that drove it.
type TraceSummary struct {
	Processors int
	Tasks      int // schedule tasks traced (all of them)

	// PredictedMakespan is the schedule's modelled parallel time in the cost
	// model's seconds; MeasuredMakespan is the wall-clock span from the first
	// task start to the last task end.
	PredictedMakespan float64
	MeasuredMakespan  time.Duration

	// TimeScale converts modelled seconds to this host's wall seconds
	// (measured total busy / modelled total busy).
	TimeScale float64

	// MeanAbsModelError and MaxAbsModelError summarise how much each task's
	// measured duration deviates from its modelled one after rescaling
	// (0.25 = 25% off), duration-weighted and worst-case; WorstTask attains
	// the maximum.
	MeanAbsModelError float64
	MaxAbsModelError  float64
	WorstTask         int

	// ModelImbalance and MeasuredImbalance are max/mean busy time across
	// processors, as scheduled and as executed.
	ModelImbalance    float64
	MeasuredImbalance float64

	// Traffic observed by the runtime (zero under the shared-memory runtime).
	Messages   int64
	Bytes      int64
	Spills     int64
	SpillBytes int64

	// Fault-injection observables (all zero on a fault-free run):
	// FaultEvents counts every recorded KindFault event (injected drops,
	// duplicates, delays, crashes, stalls, plus recovery actions); Resends and
	// Restarts single out the reliability layer's retransmissions and worker
	// restarts.
	FaultEvents int64
	Resends     int64
	Restarts    int64
	// Perturbations counts the static-pivot substitutions recorded during the
	// traced factorization (KindPivot instants; 0 unless Options.StaticPivot
	// is enabled and the matrix needed them).
	Perturbations int64
}

// Summary computes the divergence digest. It fails if the trace does not
// cover every schedule task.
func (t *Trace) Summary() (TraceSummary, error) {
	rp, err := trace.CompareOpts(t.sch, t.rec, trace.CompareOptions{FreeMapping: t.free})
	if err != nil {
		return TraceSummary{}, err
	}
	ts := TraceSummary{
		Processors:        rp.P,
		Tasks:             len(rp.Tasks),
		PredictedMakespan: rp.PredictedMakespan,
		MeasuredMakespan:  time.Duration(rp.MeasuredMakespan * float64(time.Second)),
		TimeScale:         rp.TimeScale,
		MeanAbsModelError: rp.MeanAbsNormError,
		MaxAbsModelError:  rp.MaxAbsNormError,
		WorstTask:         rp.WorstTask,
		ModelImbalance:    rp.ModelImbalance,
		MeasuredImbalance: rp.MeasImbalance,
		Messages:          rp.MsgsSent,
		Bytes:             rp.BytesSent,
		Spills:            rp.SpillCount,
		SpillBytes:        rp.SpillBytes,
	}
	for id, n := range t.rec.FaultCounts() {
		ts.FaultEvents += n
		switch id {
		case trace.FaultResend:
			ts.Resends = n
		case trace.FaultRestart:
			ts.Restarts = n
		}
	}
	ts.Perturbations = t.rec.KindCount(trace.KindPivot)
	return ts, nil
}
