// Command pastix factors and solves a sparse symmetric positive definite
// system with the PaStiX solver: read a Harwell-Boeing RSA file or generate
// one of the built-in synthetic test problems, run the full pipeline
// (ordering, block symbolic factorization, static scheduling, parallel
// fan-in LDLᵀ), solve against a reference right-hand side, and report
// metrics.
//
// Usage:
//
//	pastix -gen SHIP003 -scale 0.25 -p 8
//	pastix -rsa matrix.rsa -p 4 -ordering metis
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/pastix-go/pastix"
	"github.com/pastix-go/pastix/internal/gen"
)

// Exit codes: 0 success, 1 generic failure, 2 numerical breakdown (matrix
// not SPD / zero pivot / pivot escalation exhausted), 3 invalid options,
// 4 fault-injection budget exhausted (chaos run declared unrecoverable).
func fatal(err error) {
	code := 1
	switch {
	case errors.Is(err, pastix.ErrNotSPD), errors.Is(err, pastix.ErrPivotExhausted):
		code = 2
	case errors.Is(err, pastix.ErrBadOptions):
		code = 3
	case errors.Is(err, pastix.ErrFaultBudget):
		code = 4
	}
	log.Print(err)
	os.Exit(code)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pastix: ")
	var (
		rsaPath   = flag.String("rsa", "", "Harwell-Boeing RSA file to factor")
		genName   = flag.String("gen", "", "generate a synthetic problem ("+strings.Join(gen.Names(), ", ")+")")
		scale     = flag.Float64("scale", 0.25, "size scale for generated problems")
		procs     = flag.Int("p", 1, "number of virtual processors")
		ordering  = flag.String("ordering", "scotch", "ordering: scotch, metis, amd, natural")
		blockSize = flag.Int("bs", 64, "BLAS blocking size")
		runtime   = flag.String("runtime", "auto", "factorization runtime: auto, mpsim (message-passing), shared (zero-copy shared memory), dynamic (work-stealing) or seq (sequential reference)")
		calibrate = flag.Bool("calibrate", false, "calibrate the cost model on this host")
		gantt     = flag.Bool("gantt", false, "print a Gantt chart of the static schedule")
		stats     = flag.Bool("stats", false, "print a detailed schedule summary")
		schedCSV  = flag.String("sched-csv", "", "write the static schedule as CSV to this file")
		traceOut  = flag.String("trace", "", "trace the factorization and write Chrome trace-event JSON to this file (open in chrome://tracing or ui.perfetto.dev)")
		traceRep  = flag.Bool("trace-report", false, "trace the factorization and print the predicted-vs-actual divergence report")

		chaosSeed  = flag.Int64("chaos-seed", 0, "seed for deterministic fault injection (same seed replays the same faults)")
		chaosDrop  = flag.Float64("chaos-drop", 0, "probability of dropping each wire transmission, in [0,1)")
		chaosDup   = flag.Float64("chaos-dup", 0, "probability of duplicating each data message, in [0,1)")
		chaosDelay = flag.Float64("chaos-delay", 0, "probability of delaying each delivery, in [0,1)")
		chaosMaxD  = flag.Duration("chaos-max-delay", 0, "upper bound on injected delivery delays (default 1ms)")
		chaosCrash = flag.String("chaos-crash", "", "crash schedule as proc:task[,proc:task...] — crash each proc once before that task index")
		chaosStall = flag.String("chaos-stall", "", "stall schedule as proc:task:duration[,...] — e.g. 2:1:50ms")

		pivotEps   = flag.Float64("pivot-eps", 0, "static-pivot threshold ε_piv relative to ‖A‖_max (0 = no pivoting)")
		pivotRetry = flag.Int("pivot-retries", 0, "ε-escalation attempts on breakdown via robust factorization (0 = fail fast)")
		refineTol  = flag.Float64("refine-tol", 0, "refine the solve adaptively to this backward error (0 = off unless pivoting perturbed)")
	)
	flag.Parse()

	plan, err := chaosPlanFromFlags(*chaosSeed, *chaosDrop, *chaosDup, *chaosDelay, *chaosMaxD, *chaosCrash, *chaosStall)
	if err != nil {
		fatal(fmt.Errorf("%w: %v", pastix.ErrBadOptions, err))
	}

	a, title, err := loadMatrix(*rsaPath, *genName, *scale)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("matrix   : %s (n=%d, nnz_A=%d)\n", title, a.N, a.NNZOffDiag())

	var method pastix.OrderingMethod
	switch *ordering {
	case "scotch":
		method = pastix.OrderScotchLike
	case "metis":
		method = pastix.OrderMetisLike
	case "amd":
		method = pastix.OrderAMD
	case "natural":
		method = pastix.OrderNatural
	default:
		fatal(fmt.Errorf("%w: unknown ordering %q", pastix.ErrBadOptions, *ordering))
	}

	rt, err := pastix.ParseRuntime(*runtime)
	if err != nil {
		fatal(err)
	}

	start := time.Now()
	an, err := pastix.Analyze(a, pastix.Options{
		Processors:       *procs,
		Ordering:         method,
		BlockSize:        *blockSize,
		CalibrateMachine: *calibrate,
		Runtime:          rt,
		Faults:           plan,
		StaticPivot:      pastix.StaticPivotOptions{Epsilon: *pivotEps, MaxRetries: *pivotRetry},
		RefineTol:        *refineTol,
	})
	if err != nil {
		fatal(err)
	}
	if plan != nil {
		fmt.Printf("chaos    : seed %d, drop %.2f, dup %.2f, delay %.2f, %d crash(es), %d stall(s) scheduled\n",
			plan.Seed, plan.Drop, plan.Dup, plan.Delay, len(plan.CrashAtStep), len(plan.StallAtStep))
	}
	tAnalyze := time.Since(start)
	st := an.Stats()
	fmt.Printf("analysis : %.3fs — %d column blocks (%d distributed 2D), %d tasks on %d processors\n",
		tAnalyze.Seconds(), st.ColumnBlocks, st.Cells2D, st.Tasks, st.Processors)
	if *stats {
		ph := an.PhaseTimes()
		fmt.Printf("phases   : order %.3fs, tree %.3fs, symbolic %.3fs, schedule %.3fs\n",
			ph[0].Seconds(), ph[1].Seconds(), ph[2].Seconds(), ph[3].Seconds())
	}
	fmt.Printf("fill     : NNZ_L=%d (scalar), %d stored (block), OPC=%.3e\n",
		st.ScalarNNZL, st.BlockNNZL, st.ScalarOPC)
	fmt.Printf("model    : predicted parallel factorization %.3fs on the scheduling profile\n",
		st.PredictedTime)
	if *stats {
		if err := an.WriteScheduleSummary(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if *gantt {
		if err := an.WriteScheduleGantt(os.Stdout, 100); err != nil {
			fatal(err)
		}
	}
	if *schedCSV != "" {
		fh, err := os.Create(*schedCSV)
		if err != nil {
			fatal(err)
		}
		if err := an.WriteScheduleCSV(fh); err != nil {
			fatal(err)
		}
		if err := fh.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("schedule : CSV written to %s\n", *schedCSV)
	}

	tracing := *traceOut != "" || *traceRep
	start = time.Now()
	var f *pastix.Factor
	var tr *pastix.Trace
	var robust *pastix.RobustStats
	if tracing {
		f, tr, err = an.FactorizeTraced(context.Background(), pastix.TraceOptions{})
	} else {
		f, err = an.Factorize()
	}
	if err != nil && errors.Is(err, pastix.ErrNotSPD) && *pivotRetry > 0 {
		// Breakdown with escalation requested: retry with escalating ε_piv.
		var rs pastix.RobustStats
		f, rs, err = an.FactorizeRobust(context.Background())
		if err == nil {
			robust, tr = &rs, nil
			if tracing {
				fmt.Println("trace    : skipped (factorization recovered via robust escalation)")
			}
		}
	}
	if err != nil {
		fatal(err)
	}
	tFactor := time.Since(start)
	fmt.Printf("factorize: %.3fs wall (%.2f GFlop/s on OPC, %s runtime)\n",
		tFactor.Seconds(), st.ScalarOPC/tFactor.Seconds()/1e9, *runtime)
	if rep := f.Perturbations(); rep != nil && len(rep.Perturbed) > 0 {
		fmt.Printf("pivoting : %d column(s) perturbed at ε=%.1e (τ=%.3e, growth %.2e): %v\n",
			len(rep.Perturbed), rep.Epsilon, rep.Threshold, rep.PivotGrowth, rep.Columns())
	}
	if robust != nil {
		fmt.Printf("robust   : recovered after %d attempt(s), backward error %.2e (%d refinement sweep(s))\n",
			robust.Attempts, robust.BackwardError, robust.RefineIterations)
	}
	if tr != nil && *traceOut != "" {
		fh, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := tr.WriteChromeTrace(fh); err != nil {
			fatal(err)
		}
		if err := fh.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace    : Chrome trace-event JSON written to %s\n", *traceOut)
	}
	if tr != nil && *traceRep {
		if err := tr.WriteReport(os.Stdout); err != nil {
			fatal(err)
		}
	}

	// Solve against b = A·x_ref and report the error. A perturbed factor (or
	// an explicit -refine-tol) routes through adaptive refinement so the
	// answer meets the backward-error target despite the substituted pivots.
	xref, b := gen.RHSForSolution(a)
	perturbed := f.Perturbations() != nil && len(f.Perturbations().Perturbed) > 0
	start = time.Now()
	sopts := pastix.SolveOptions{}
	if perturbed || *refineTol > 0 {
		sopts.Refine = &pastix.RefineOptions{}
	}
	res, err := an.SolveOpts(context.Background(), f, b, sopts)
	if err != nil {
		fatal(err)
	}
	x := res.X
	if rs := res.Refine; rs != nil {
		fmt.Printf("refine   : %d sweep(s), backward error %.2e (converged=%v)\n",
			rs.Iterations, rs.BackwardError, rs.Converged)
	}
	tSolve := time.Since(start)
	maxErr := 0.0
	for i := range x {
		if e := abs(x[i] - xref[i]); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("solve    : %.3fs wall, residual %.2e, max |x-x_ref| %.2e\n",
		tSolve.Seconds(), pastix.Residual(a, x, b), maxErr)
}

// chaosPlanFromFlags builds a FaultPlan from the -chaos-* flags, or nil when
// none are set.
func chaosPlanFromFlags(seed int64, drop, dup, delay float64, maxDelay time.Duration, crash, stall string) (*pastix.FaultPlan, error) {
	plan := &pastix.FaultPlan{
		Seed:     seed,
		Drop:     drop,
		Dup:      dup,
		Delay:    delay,
		MaxDelay: maxDelay,
	}
	if crash != "" {
		plan.CrashAtStep = make(map[int]int)
		for _, spec := range strings.Split(crash, ",") {
			parts := strings.Split(spec, ":")
			if len(parts) != 2 {
				return nil, fmt.Errorf("bad -chaos-crash entry %q (want proc:task)", spec)
			}
			proc, err1 := strconv.Atoi(parts[0])
			task, err2 := strconv.Atoi(parts[1])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("bad -chaos-crash entry %q (want proc:task)", spec)
			}
			plan.CrashAtStep[proc] = task
		}
	}
	if stall != "" {
		plan.StallAtStep = make(map[int]pastix.FaultStall)
		for _, spec := range strings.Split(stall, ",") {
			parts := strings.Split(spec, ":")
			if len(parts) != 3 {
				return nil, fmt.Errorf("bad -chaos-stall entry %q (want proc:task:duration)", spec)
			}
			proc, err1 := strconv.Atoi(parts[0])
			task, err2 := strconv.Atoi(parts[1])
			dur, err3 := time.ParseDuration(parts[2])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("bad -chaos-stall entry %q (want proc:task:duration)", spec)
			}
			plan.StallAtStep[proc] = pastix.FaultStall{Step: task, Duration: dur}
		}
	}
	if !plan.Active() {
		return nil, nil
	}
	return plan, nil
}

func loadMatrix(rsaPath, genName string, scale float64) (*pastix.Matrix, string, error) {
	switch {
	case rsaPath != "" && genName != "":
		return nil, "", fmt.Errorf("choose one of -rsa or -gen")
	case rsaPath != "":
		fh, err := os.Open(rsaPath)
		if err != nil {
			return nil, "", err
		}
		defer fh.Close()
		return pastix.ReadRSA(fh)
	case genName != "":
		p, err := gen.Generate(genName, scale)
		if err != nil {
			return nil, "", err
		}
		return p.A, p.Name + " — " + p.Description, nil
	default:
		return nil, "", fmt.Errorf("one of -rsa or -gen is required")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
