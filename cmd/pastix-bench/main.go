// Command pastix-bench regenerates the paper's evaluation section:
//
//	pastix-bench -table1              # Table 1: problems and ordering metrics
//	pastix-bench -table2              # Table 2: time/Gflops, PaStiX vs PSPASES
//	pastix-bench -dense               # §3 dense LLᵀ vs LDLᵀ kernel comparison
//	pastix-bench -ablate              # §2 scheduling/distribution ablations
//	pastix-bench -sharedcmp           # shared-memory vs mpsim runtime, executed
//	pastix-bench -all -scale 0.25     # everything, at a chosen problem scale
//
// Times in Table 2 are modelled on the IBM SP2 (Power2SC) machine profile —
// the paper's testbed — so 64-processor runs are reproducible on any host;
// see EXPERIMENTS.md for how they compare with the published numbers.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"

	"github.com/pastix-go/pastix"
	"github.com/pastix-go/pastix/internal/bench"
	servebench "github.com/pastix-go/pastix/internal/bench/serve"
	"github.com/pastix-go/pastix/internal/gen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pastix-bench: ")
	var (
		table1 = flag.Bool("table1", false, "regenerate Table 1")
		table2 = flag.Bool("table2", false, "regenerate Table 2")
		dense  = flag.Bool("dense", false, "dense kernel comparison (§3)")
		ablate = flag.Bool("ablate", false, "scheduling ablations (§2)")
		plot   = flag.String("plot", "", "render the Table 2 speedup curves of one problem (e.g. -plot B5TUER)")
		bsweep = flag.String("blocksweep", "", "sweep the blocking size for one problem (e.g. -blocksweep BMWCRA1)")
		all    = flag.Bool("all", false, "run everything")
		scale  = flag.Float64("scale", bench.DefaultScale, "problem scale (1.0 ≈ 1/8 of the paper's DOF)")
		procsF = flag.String("procs", "1,2,4,8,16,32,64", "processor counts for Table 2")
		denseN = flag.Int("densen", 512, "dense kernel order (paper used 1024)")

		sharedCmp  = flag.Bool("sharedcmp", false, "compare shared-memory vs message-passing runtime (executed, 3D Poisson)")
		sharedGrid = flag.Int("sharedgrid", 14, "Poisson grid edge for -sharedcmp (n³ unknowns)")
		sharedReps = flag.Int("sharedreps", 5, "timing repetitions per point for -sharedcmp (best kept)")
		jsonOut    = flag.String("json", "", "also write -sharedcmp or -batchrhs rows as JSON to this file")

		batchRHS   = flag.Bool("batchrhs", false, "compare k independent parallel solves vs one batched multi-RHS solve (executed, 3D Poisson)")
		batchGrid  = flag.Int("batchgrid", 14, "Poisson grid edge for -batchrhs (n³ unknowns)")
		batchProcs = flag.Int("batchprocs", 4, "processor count for -batchrhs")
		batchReps  = flag.Int("batchreps", 5, "timing repetitions per point for -batchrhs (best kept)")
		batchKs    = flag.String("batchks", "1,2,4,8,16,32", "right-hand-side counts for -batchrhs")

		diverge  = flag.Bool("divergence", false, "trace an executed 3D Poisson factorization under the parallel runtimes and print the predicted-vs-actual divergence reports")
		divGrid  = flag.Int("divgrid", 12, "Poisson grid edge for -divergence (n³ unknowns)")
		divProcs = flag.Int("divprocs", 4, "processor count for -divergence")

		dynCmp   = flag.Bool("dyncmp", false, "compare the static shared-memory runtime vs the work-stealing dynamic runtime (regular + irregular matrices, idle + loaded machine)")
		dynGrid  = flag.Int("dyngrid", 14, "Poisson grid edge for -dyncmp (n³ unknowns)")
		dynProcs = flag.Int("dynprocs", 4, "worker count for -dyncmp")
		dynReps  = flag.Int("dynreps", 5, "timing repetitions per point for -dyncmp (best kept)")
		dynLoad  = flag.Int("dynload", 0, "background CPU-burner goroutines for the loaded -dyncmp points (0 = worker count)")
		dynOut   = flag.String("dynout", "BENCH_dynamic_vs_static.json", "JSON output file for -dyncmp rows")

		serveTest    = flag.Bool("servetest", false, "measure the solve-path throughput engine: level-set vs legacy per-RHS solve time plus an in-process serving load test")
		serveGrid    = flag.Int("servegrid", 12, "Poisson grid edge for -servetest (n³ unknowns)")
		serveProcs   = flag.Int("serveprocs", 4, "solver worker count for -servetest")
		serveReps    = flag.Int("servereps", 5, "timing repetitions per solve point for -servetest (best kept)")
		serveNRHS    = flag.Int("servenrhs", 32, "wide panel width for the -servetest multi-RHS points")
		serveReqs    = flag.Int("servereqs", 200, "solve requests per load point for -servetest")
		serveClients = flag.String("serveclients", "2,8", "concurrent client counts for the -servetest load points")
		serveOut     = flag.String("serveout", "BENCH_solve_throughput.json", "JSON output file for the -servetest report")

		blrTest  = flag.Bool("blr", false, "measure block low-rank factor compression: memory ratio, compress/solve time and backward error across tolerances (3-D Poisson + graded + irregular generators)")
		blrGrid  = flag.Int("blrgrid", 14, "Poisson grid edge for -blr (n³ unknowns)")
		blrProcs = flag.Int("blrprocs", 4, "processor count for -blr")
		blrReps  = flag.Int("blrreps", 3, "timing repetitions per point for -blr (best kept)")
		blrTols  = flag.String("blrtols", "1e-2,1e-4,1e-6,1e-8,1e-10", "compression tolerances for -blr")
		blrMin   = flag.Int("blrminblock", 8, "admission floor min(rows,cols) for -blr compression")
		blrOut   = flag.String("blrout", "BENCH_blr.json", "JSON output file for the -blr report")

		gwTest    = flag.Bool("gateway", false, "measure HA-gateway serving throughput and node-kill failover cost (QPS/p50/p99 at 0 and 1 kills per client count)")
		gwGrid    = flag.Int("gwgrid", 12, "Poisson grid edge for -gateway (n³ unknowns)")
		gwProcs   = flag.Int("gwprocs", 4, "solver worker count per backend for -gateway")
		gwNodes   = flag.Int("gwnodes", 3, "backend nodes behind the gateway for -gateway")
		gwReqs    = flag.Int("gwreqs", 200, "solve requests per load point for -gateway")
		gwClients = flag.String("gwclients", "2,8", "concurrent client counts for the -gateway load points")
		gwOut     = flag.String("gwout", "BENCH_gateway_failover.json", "JSON output file for the -gateway report")

		duraTest    = flag.Bool("durability", false, "measure the durable factor store: durable-ack vs in-memory factorize latency, journal replay wall time, and bitwise solve identity across a restart")
		duraGrid    = flag.Int("duragrid", 12, "Poisson grid edge for -durability (n³ unknowns)")
		duraProcs   = flag.Int("duraprocs", 4, "solver worker count for -durability")
		duraFactors = flag.Int("durafactors", 16, "factorize requests per mode for -durability (also the journal replay depth)")
		duraOut     = flag.String("duraout", "BENCH_durability.json", "JSON output file for the -durability report")
	)
	flag.Parse()
	if *all {
		*table1, *table2, *dense, *ablate = true, true, true, true
	}
	if !*table1 && !*table2 && !*dense && !*ablate && !*sharedCmp && !*batchRHS && !*diverge && !*dynCmp && !*serveTest && !*gwTest && !*blrTest && !*duraTest && *plot == "" && *bsweep == "" {
		flag.Usage()
		return
	}

	var procs []int
	for _, s := range strings.Split(*procsF, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || p < 1 {
			log.Fatalf("bad -procs entry %q", s)
		}
		procs = append(procs, p)
	}

	if *table1 {
		fmt.Printf("== Table 1: description of the test problems (scale %g) ==\n", *scale)
		rows, err := bench.Table1(*scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(bench.FormatTable1(rows))
		fmt.Println()
	}
	if *table2 {
		fmt.Printf("== Table 2: factorization performance, time in modelled SP2 seconds (Gflops) ==\n")
		rows, err := bench.Table2(*scale, procs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(bench.FormatTable2(rows))
		fmt.Println()
	}
	if *dense {
		fmt.Printf("== §3 dense kernel comparison (n=%d) ==\n", *denseN)
		r := bench.DenseKernels(*denseN)
		fmt.Printf("host measured : LLT %.3fs   LDLT %.3fs   ratio %.2f\n", r.LLT, r.LDLT, r.RatioHost)
		fmt.Printf("SP2 modelled  : LLT %.3fs   LDLT %.3fs   ratio %.2f (paper@1024: 1.07s / 1.27s = 1.19)\n",
			r.SP2LLT, r.SP2LDLT, r.RatioSP2)
		fmt.Println()
	}
	if *plot != "" {
		rows, err := bench.Table2(*scale, procs)
		if err != nil {
			log.Fatal(err)
		}
		found := false
		for _, r := range rows {
			if r.Name == *plot {
				fmt.Print(bench.FormatSpeedupPlot(r, 16))
				found = true
			}
		}
		if !found {
			log.Fatalf("unknown problem %q", *plot)
		}
	}
	if *bsweep != "" {
		fmt.Printf("== blocking-size sweep for %s (P=16, SP2 model) ==\n", *bsweep)
		rows, err := bench.BlockSweep(*bsweep, *scale, 16, []int{8, 16, 32, 64, 128})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6s %12s %9s %12s\n", "bs", "blockNNZ_L", "tasks", "model time")
		for _, r := range rows {
			fmt.Printf("%6d %12d %9d %11.4fs\n", r.BlockSize, r.BlockNNZL, r.Tasks, r.ModelTime)
		}
		fmt.Println()
	}
	if *sharedCmp {
		g := *sharedGrid
		// Unlike the modelled tables, this comparison executes on goroutine
		// processors and times the host. The axis runs over powers of two up
		// to 8 (the paper's interesting range) and on larger hosts continues
		// to NumCPU.
		axis := []int{1, 2, 4, 8}
		for p := 16; p <= runtime.NumCPU(); p *= 2 {
			axis = append(axis, p)
		}
		fmt.Printf("== shared-memory vs mpsim runtime, executed %d³ Poisson (best of %d) ==\n", g, *sharedReps)
		rows, err := bench.CompareRuntimes(g, g, g, axis, *sharedReps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(bench.FormatRuntimes(rows))
		if *jsonOut != "" {
			data, err := json.MarshalIndent(struct {
				Grid int                `json:"grid"`
				Reps int                `json:"reps"`
				Rows []bench.RuntimeRow `json:"rows"`
			}{g, *sharedReps, rows}, "", "  ")
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("rows written to %s\n", *jsonOut)
		}
		fmt.Println()
	}
	if *batchRHS {
		g := *batchProcs
		var ks []int
		for _, s := range strings.Split(*batchKs, ",") {
			k, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || k < 1 {
				log.Fatalf("bad -batchks entry %q", s)
			}
			ks = append(ks, k)
		}
		fmt.Printf("== batched multi-RHS solve vs %d independent parallel solves, executed %d³ Poisson on %d processors (best of %d) ==\n",
			ks[len(ks)-1], *batchGrid, g, *batchReps)
		rows, err := bench.CompareBatchedSolve(*batchGrid, *batchGrid, *batchGrid, g, ks, *batchReps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(bench.FormatBatchedSolve(rows))
		if *jsonOut != "" {
			data, err := json.MarshalIndent(struct {
				Grid int              `json:"grid"`
				P    int              `json:"p"`
				Reps int              `json:"reps"`
				Rows []bench.BatchRow `json:"rows"`
			}{*batchGrid, g, *batchReps, rows}, "", "  ")
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("rows written to %s\n", *jsonOut)
		}
		fmt.Println()
	}
	if *diverge {
		g := *divGrid
		fmt.Printf("== predicted-vs-actual divergence, executed %d³ Poisson on %d processors ==\n", g, *divProcs)
		a := gen.Laplacian3D(g, g, g)
		for _, rt := range []struct {
			name    string
			runtime pastix.Runtime
		}{
			{"mpsim (message-passing)", pastix.RuntimeMPSim},
			{"shared (zero-copy)", pastix.RuntimeShared},
			{"dynamic (work-stealing)", pastix.RuntimeDynamic},
		} {
			an, err := pastix.Analyze(a, pastix.Options{Processors: *divProcs, Runtime: rt.runtime})
			if err != nil {
				log.Fatal(err)
			}
			_, tr, err := an.FactorizeTraced(context.Background(), pastix.TraceOptions{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\n-- runtime: %s --\n", rt.name)
			if err := tr.WriteReport(os.Stdout); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Println()
	}
	if *dynCmp {
		fmt.Printf("== dynamic (work-stealing) vs static (shared-memory) makespan, %d workers ==\n", *dynProcs)
		rp, err := bench.CompareDynamic(*dynGrid, *dynProcs, *dynReps, *dynLoad)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(bench.FormatDynRows(rp.Rows))
		if rp.Note != "" {
			fmt.Printf("note: %s\n", rp.Note)
		}
		if *dynOut != "" {
			data, err := json.MarshalIndent(rp, "", "  ")
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(*dynOut, append(data, '\n'), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("rows written to %s\n", *dynOut)
		}
		fmt.Println()
	}
	if *serveTest {
		var clients []int
		for _, s := range strings.Split(*serveClients, ",") {
			c, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || c < 1 {
				log.Fatalf("bad -serveclients entry %q", s)
			}
			clients = append(clients, c)
		}
		fmt.Printf("== solve-path throughput: level-set engine vs legacy sweeps, %d workers ==\n", *serveProcs)
		rp, err := servebench.ServeTest(*serveGrid, *serveProcs, *serveReps, *serveNRHS, *serveReqs, clients)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(servebench.FormatServeReport(rp))
		if rp.Note != "" {
			fmt.Printf("note: %s\n", rp.Note)
		}
		if *serveOut != "" {
			data, err := json.MarshalIndent(rp, "", "  ")
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(*serveOut, append(data, '\n'), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("report written to %s\n", *serveOut)
		}
		fmt.Println()
	}
	if *blrTest {
		var tols []float64
		for _, s := range strings.Split(*blrTols, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil || v <= 0 || v >= 1 {
				log.Fatalf("bad -blrtols entry %q", s)
			}
			tols = append(tols, v)
		}
		fmt.Printf("== block low-rank factor compression across tolerances, %d processors ==\n", *blrProcs)
		rp, err := bench.BLRCompare(*blrGrid, *blrProcs, *blrReps, *blrMin, tols)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(bench.FormatBLR(rp))
		if rp.Note != "" {
			fmt.Printf("\nnote: %s\n", rp.Note)
		}
		if *blrOut != "" {
			data, err := json.MarshalIndent(rp, "", "  ")
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(*blrOut, append(data, '\n'), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("report written to %s\n", *blrOut)
		}
		fmt.Println()
	}
	if *gwTest {
		var clients []int
		for _, s := range strings.Split(*gwClients, ",") {
			c, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || c < 1 {
				log.Fatalf("bad -gwclients entry %q", s)
			}
			clients = append(clients, c)
		}
		fmt.Printf("== HA gateway: throughput and node-kill failover cost, %d nodes ==\n", *gwNodes)
		rp, err := servebench.GatewayTest(*gwGrid, *gwProcs, *gwNodes, *gwReqs, clients)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(servebench.FormatGatewayReport(rp))
		if rp.Note != "" {
			fmt.Printf("note: %s\n", rp.Note)
		}
		if *gwOut != "" {
			data, err := rp.MarshalPretty()
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(*gwOut, data, 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("report written to %s\n", *gwOut)
		}
		fmt.Println()
	}
	if *duraTest {
		fmt.Printf("== durable factor store: ack cost, journal replay, restart identity ==\n")
		rp, err := servebench.DurabilityTest(*duraGrid, *duraProcs, *duraFactors)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(servebench.FormatDurabilityReport(rp))
		if rp.Note != "" {
			fmt.Printf("note: %s\n", rp.Note)
		}
		if *duraOut != "" {
			data, err := json.MarshalIndent(rp, "", "  ")
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(*duraOut, append(data, '\n'), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("report written to %s\n", *duraOut)
		}
		fmt.Println()
	}
	if *ablate {
		fmt.Printf("== §2 ablations: replayed makespan in modelled SP2 seconds ==\n")
		fmt.Printf("%-10s %4s %12s %12s %14s\n", "Name", "P", "mixed 1D/2D", "1D only", "first-cand map")
		for _, name := range gen.Names() {
			for _, p := range []int{8, 32} {
				row, err := bench.Ablate(name, *scale, p)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%-10s %4d %12.3f %12.3f %14.3f\n",
					name, p, row.Mixed1D2D, row.Only1D, row.FirstCand)
			}
		}
	}
}
