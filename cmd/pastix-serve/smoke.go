package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"github.com/pastix-go/pastix"
	"github.com/pastix-go/pastix/internal/gen"
	"github.com/pastix-go/pastix/internal/service"
)

// Wire bodies for the smoke client (mirrors internal/service's JSON API).
type smokeMatrixReq struct {
	MatrixMarket string `json:"matrix_market"`
}
type smokeAnalyzeResp struct {
	Fingerprint string `json:"fingerprint"`
	Cached      bool   `json:"cached"`
	N           int    `json:"n"`
	Tasks       int    `json:"tasks"`
}
type smokeFactorizeResp struct {
	Handle         string `json:"handle"`
	AnalysisCached bool   `json:"analysis_cached"`
	Durable        bool   `json:"durable"`
}
type smokeSolveReq struct {
	Handle string    `json:"handle"`
	B      []float64 `json:"b"`
}
type smokeSolveResp struct {
	X       []float64 `json:"x"`
	Batched int       `json:"batched"`
}

// runSmoke boots the service on a random loopback port and drives the full
// serving loop against itself: analysis caching, factorization, coalesced
// multi-RHS solves, and the metrics exposition.
func runSmoke(cfg service.Config) error {
	// A wide window so the concurrent smoke solves reliably coalesce.
	if cfg.BatchWindow == 0 {
		cfg.BatchWindow = 250 * time.Millisecond
	}
	s, err := service.New(cfg)
	if err != nil {
		return err
	}
	defer s.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("serve-smoke: serving on", base)

	// A 3-D Poisson problem with a known solution.
	a := gen.Laplacian3D(8, 8, 8)
	xTrue, b := gen.RHSForSolution(a)
	var mm strings.Builder
	if err := pastix.WriteMatrixMarket(&mm, a, "serve-smoke poisson 8x8x8"); err != nil {
		return err
	}

	// Analyze; the second request for the same pattern must be a cache hit.
	var ar smokeAnalyzeResp
	if err := smokePost(base+"/v1/analyze", smokeMatrixReq{MatrixMarket: mm.String()}, &ar); err != nil {
		return fmt.Errorf("analyze: %w", err)
	}
	if ar.Cached || ar.N != a.N || ar.Tasks <= 0 {
		return fmt.Errorf("unexpected first analyze response: %+v", ar)
	}
	fmt.Printf("serve-smoke: analyzed n=%d tasks=%d fingerprint=%.8s…\n", ar.N, ar.Tasks, ar.Fingerprint)
	var ar2 smokeAnalyzeResp
	if err := smokePost(base+"/v1/analyze", smokeMatrixReq{MatrixMarket: mm.String()}, &ar2); err != nil {
		return fmt.Errorf("second analyze: %w", err)
	}
	if !ar2.Cached {
		return fmt.Errorf("second analyze of the same pattern was not served from cache")
	}
	fmt.Println("serve-smoke: second analyze served from cache")

	// Factorize against the cached analysis.
	var fr smokeFactorizeResp
	if err := smokePost(base+"/v1/factorize", smokeMatrixReq{MatrixMarket: mm.String()}, &fr); err != nil {
		return fmt.Errorf("factorize: %w", err)
	}
	if !fr.AnalysisCached || fr.Handle == "" {
		return fmt.Errorf("unexpected factorize response: %+v", fr)
	}
	fmt.Println("serve-smoke: factorized, handle", fr.Handle)

	// Concurrent solves with scaled right-hand sides: A(c·x) = c·b, so each
	// column has a known solution. They should ride one coalesced batch.
	const k = 4
	n := a.N
	solErr := make([]error, k)
	batched := make([]int, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := float64(i + 1)
			bi := make([]float64, n)
			for j := range bi {
				bi[j] = c * b[j]
			}
			var sr smokeSolveResp
			if err := smokePost(base+"/v1/solve", smokeSolveReq{Handle: fr.Handle, B: bi}, &sr); err != nil {
				solErr[i] = fmt.Errorf("solve %d: %w", i, err)
				return
			}
			batched[i] = sr.Batched
			for j := range sr.X {
				if math.Abs(sr.X[j]-c*xTrue[j]) > 1e-8 {
					solErr[i] = fmt.Errorf("solve %d: x[%d] = %v, want %v", i, j, sr.X[j], c*xTrue[j])
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range solErr {
		if err != nil {
			return err
		}
	}
	maxBatched := 0
	for _, v := range batched {
		if v > maxBatched {
			maxBatched = v
		}
	}
	fmt.Printf("serve-smoke: %d solves verified, batch sizes %v\n", k, batched)
	if maxBatched < 2 {
		return fmt.Errorf("batcher did not coalesce: batch sizes %v", batched)
	}

	// Scrape /metrics and assert the cache hits were counted.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	text := string(raw)
	for _, want := range []string{"pastix_cache_hits_total", "pastix_batches_total", "pastix_batched_rhs_total"} {
		if !strings.Contains(text, want) {
			return fmt.Errorf("metrics exposition missing %s", want)
		}
	}
	hits, err := smokeMetric(text, "pastix_cache_hits_total")
	if err != nil {
		return err
	}
	if hits < 1 {
		return fmt.Errorf("pastix_cache_hits_total = %g, want ≥ 1", hits)
	}
	fmt.Printf("serve-smoke: metrics ok (cache hits %g)\n", hits)

	return smokeDurable(cfg, mm.String(), b)
}

// smokeDurable drives the persist → restart → solve round trip: a durable
// service factorizes and acks, the process "dies", a fresh one replays the
// journal from the same data dir, and the old handle solves bitwise
// identically.
func smokeDurable(cfg service.Config, mm string, b []float64) error {
	dir, err := os.MkdirTemp("", "pastix-smoke-durable-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cfg.DataDir = dir

	start := func() (*service.Server, *http.Server, string, error) {
		s, err := service.New(cfg)
		if err != nil {
			return nil, nil, "", err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			s.Close()
			return nil, nil, "", err
		}
		hs := &http.Server{Handler: s.Handler()}
		go hs.Serve(ln)
		return s, hs, "http://" + ln.Addr().String(), nil
	}

	s1, hs1, base1, err := start()
	if err != nil {
		return err
	}
	var fr smokeFactorizeResp
	if err := smokePost(base1+"/v1/factorize", smokeMatrixReq{MatrixMarket: mm}, &fr); err != nil {
		hs1.Close()
		s1.Close()
		return fmt.Errorf("durable factorize: %w", err)
	}
	if !fr.Durable {
		hs1.Close()
		s1.Close()
		return fmt.Errorf("factorize with -data-dir did not ack durable: %+v", fr)
	}
	var sr1 smokeSolveResp
	if err := smokePost(base1+"/v1/solve", smokeSolveReq{Handle: fr.Handle, B: b}, &sr1); err != nil {
		hs1.Close()
		s1.Close()
		return fmt.Errorf("pre-restart solve: %w", err)
	}
	// The process dies: listener and service close, the journal stays.
	hs1.Close()
	s1.Close()
	fmt.Println("serve-smoke: durable factorize acked, process restarted")

	s2, hs2, base2, err := start()
	if err != nil {
		return err
	}
	defer func() { hs2.Close(); s2.Close() }()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s2.WaitRecovered(ctx); err != nil {
		return fmt.Errorf("journal replay: %w", err)
	}
	var sr2 smokeSolveResp
	if err := smokePost(base2+"/v1/solve", smokeSolveReq{Handle: fr.Handle, B: b}, &sr2); err != nil {
		return fmt.Errorf("post-restart solve of replayed handle %s: %w", fr.Handle, err)
	}
	if len(sr2.X) != len(sr1.X) {
		return fmt.Errorf("post-restart solve: %d values, want %d", len(sr2.X), len(sr1.X))
	}
	for j := range sr2.X {
		if sr2.X[j] != sr1.X[j] {
			return fmt.Errorf("post-restart solve: x[%d] = %x, want %x — not bit-identical across the restart",
				j, sr2.X[j], sr1.X[j])
		}
	}
	fmt.Printf("serve-smoke: handle %s replayed from the journal, solve bit-identical\n", fr.Handle)
	return nil
}

func smokePost(url string, body, into any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// smokeMetric reads one un-labelled sample value from Prometheus text.
func smokeMetric(text, name string) (float64, error) {
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line, name+" %g", &v); err != nil {
				return 0, fmt.Errorf("parse %q: %w", line, err)
			}
			return v, nil
		}
	}
	return 0, fmt.Errorf("metric %s not found", name)
}
