// Command pastix-serve runs the solver-as-a-service HTTP daemon
// (internal/service): a pattern-keyed analysis cache, a factor handle store,
// a multi-RHS solve batcher and admission control behind a JSON API.
//
//	pastix-serve -addr :8416 -procs 4
//
// With -smoke it instead starts itself on a random loopback port, drives a
// full analyze → analyze(cached) → factorize → batched-solve round trip
// against a generated Poisson problem, scrapes /metrics, then runs a durable
// persist → restart → solve leg (the replayed handle must solve bitwise
// identically), exiting non-zero on any failure — the self-contained serving
// smoke test behind `make serve-smoke`.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/pastix-go/pastix"
	"github.com/pastix-go/pastix/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":8416", "listen address (host:port; :0 picks a free port)")
		procs       = flag.Int("procs", 4, "virtual processors per factorization")
		runtimeName = flag.String("runtime", "auto", "factorization runtime: auto, seq, mpsim, shared or dynamic (work-stealing)")
		cacheSize   = flag.Int("cache-size", 0, "analysis cache entries (0 = default)")
		maxFactors  = flag.Int("max-factors", 0, "live factor handles (0 = default)")
		batchWindow = flag.Duration("batch-window", 0, "multi-RHS coalescing window (0 = default 2ms)")
		maxBatch    = flag.Int("max-batch", 0, "right-hand sides per batch (0 = default)")
		queueDepth  = flag.Int("queue-depth", 0, "admission queue depth (0 = default)")
		workers     = flag.Int("workers", 0, "concurrent requests (0 = default)")
		deadline    = flag.Duration("deadline", 0, "default per-request deadline (0 = default 30s)")
		pivotEps    = flag.Float64("pivot-eps", 0, "static-pivot threshold ε_piv relative to ‖A‖_max (0 = no pivoting)")
		pivotRetry  = flag.Int("pivot-retries", 0, "ε-escalation attempts when a factorization breaks down (0 = fail fast)")
		refineTol   = flag.Float64("refine-tol", 0, "backward-error target for refinement of degraded solves (0 = default 1e-10)")
		maxBody     = flag.Int64("max-body", 0, "request body cap in bytes; oversized bodies get a structured 413 (0 = default 64 MiB)")
		dataDir     = flag.String("data-dir", "", "durable store directory; factorize acks only after the journal fsync, and a restart replays it (empty = in-memory only)")
		snapEvery   = flag.Int("snapshot-every", 0, "WAL records between snapshot compactions (0 = default 64)")
		idemTTL     = flag.Duration("idem-ttl", 0, "idempotency record lifetime (0 = default 1h)")
		noExport    = flag.Bool("no-factor-export", false, "refuse /v1/replicate factor exports (peers must re-factorize instead)")
		smoke       = flag.Bool("smoke", false, "run the end-to-end serving smoke test and exit")
	)
	flag.Parse()

	rt, err := pastix.ParseRuntime(*runtimeName)
	if err != nil {
		log.Fatal(err)
	}
	cfg := service.Config{
		Solver: pastix.Options{
			Processors:  *procs,
			Runtime:     rt,
			StaticPivot: pastix.StaticPivotOptions{Epsilon: *pivotEps, MaxRetries: *pivotRetry},
			RefineTol:   *refineTol,
		},
		CacheSize:       *cacheSize,
		MaxFactors:      *maxFactors,
		BatchWindow:     *batchWindow,
		MaxBatch:        *maxBatch,
		QueueDepth:      *queueDepth,
		Workers:         *workers,
		DefaultDeadline: *deadline,
		MaxBodyBytes:    *maxBody,
		DataDir:         *dataDir,
		SnapshotEvery:   *snapEvery,
		IdempotencyTTL:  *idemTTL,
		NoFactorExport:  *noExport,
	}

	if *smoke {
		if err := runSmoke(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "serve-smoke: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("serve-smoke: PASS")
		return
	}

	if err := serve(cfg, *addr); err != nil {
		log.Fatal(err)
	}
}

// serve runs the daemon until SIGINT/SIGTERM, then drains gracefully: new
// requests are refused (503, /readyz flips to "draining"), the listener
// stops, and in-flight solves — including parked batch riders — finish
// before the process exits.
func serve(cfg service.Config, addr string) error {
	s, err := service.New(cfg)
	if err != nil {
		return err
	}
	defer s.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("pastix-serve listening on %s", ln.Addr())
	// ReadHeaderTimeout caps how long a connection may sit between accept and
	// a complete request line (slowloris); IdleTimeout reclaims keep-alive
	// connections parked by dead clients. Body size is bounded separately by
	// MaxBodyBytes inside the handlers.
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()
	select {
	case sig := <-stop:
		log.Printf("pastix-serve: %v, draining", sig)
		s.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return err
		}
		if err := s.Drain(ctx); err != nil {
			return fmt.Errorf("pastix-serve: drain incomplete: %w", err)
		}
		log.Print("pastix-serve: drained")
		return nil
	case err := <-done:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
