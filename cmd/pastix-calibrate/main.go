// Command pastix-calibrate measures this host's dense kernels, fits the
// multi-variable polynomial time models the static scheduler consumes (the
// paper's "BLAS and communication network time model, automatically
// calibrated on the target architecture"), and prints the resulting machine
// profile next to the built-in IBM SP2 profile.
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/pastix-go/pastix/internal/cost"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pastix-calibrate: ")
	quick := flag.Bool("quick", false, "small measurement grid")
	flag.Parse()

	local, err := cost.CalibrateLocal(*quick)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range []*cost.Machine{local, cost.SP2()} {
		fmt.Printf("machine %q\n", m.Name)
		fmt.Printf("  gemm  coef: %v\n", m.Gemm.Coef)
		fmt.Printf("  trsm  coef: %v\n", m.Trsm.Coef)
		fmt.Printf("  factor coef: %v\n", m.Factor.Coef)
		fmt.Printf("  add   coef: %v\n", m.Add.Coef)
		fmt.Printf("  network: latency %.1fus, bandwidth %.1f MB/s\n",
			m.Latency*1e6, m.Bandwidth/1e6)
		fmt.Printf("  sample predictions:\n")
		for _, sz := range []int{32, 64, 128, 256} {
			fmt.Printf("    gemm(%3d^3) %.3gs   factor(%3d) %.3gs   trsm(%3d,%3d) %.3gs\n",
				sz, m.GemmTime(sz, sz, sz), sz, m.FactorTime(sz), 4*sz, sz, m.TrsmTime(4*sz, sz))
		}
		fmt.Println()
	}
}
