// Command pastix-gateway runs the sharded HA front door for a fleet of
// pastix-serve nodes (internal/gateway): consistent-hash routing of the
// pattern fingerprint with bounded loads, R-way replication of factorize
// requests, per-backend circuit breakers fed by active /readyz probes,
// retry/failover with capped jittered backoff, and graceful degradation
// when a shard loses every replica.
//
//	pastix-serve -addr :8417 &
//	pastix-serve -addr :8418 &
//	pastix-gateway -addr :8416 -backends http://localhost:8417,http://localhost:8418
//
// Clients speak the same /v1/* JSON protocol as a single pastix-serve; the
// gateway's own health and its model of every backend are at GET /healthz.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/pastix-go/pastix/internal/gateway"
	"github.com/pastix-go/pastix/internal/gateway/client"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pastix-gateway: ")
	var (
		addr     = flag.String("addr", ":8416", "listen address (host:port; :0 picks a free port)")
		backends = flag.String("backends", "", "comma-separated pastix-serve base URLs (required)")
		replicas = flag.Int("replicas", 0, "factorize replication degree R (0 = default 2, capped at the backend count)")
		vnodes   = flag.Int("vnodes", 0, "virtual nodes per backend on the hash ring (0 = default 64)")
		loadF    = flag.Float64("load-factor", 0, "bounded-load expansion factor c >= 1 (0 = default 1.5)")
		probeIv  = flag.Duration("probe-interval", 0, "active /readyz probe cadence (0 = default 250ms)")
		attemptT = flag.Duration("attempt-timeout", 0, "per-backend attempt timeout (0 = default 15s)")
		hedge    = flag.Duration("hedge", 0, "solve hedging delay; 0 disables hedged duplicates")
		retries  = flag.Int("retries", 0, "retry attempts per request key (0 = default 3)")
		baseBack = flag.Duration("backoff", 0, "base retry backoff, full-jitter doubling (0 = default 25ms)")
		maxBack  = flag.Duration("max-backoff", 0, "backoff and Retry-After cap (0 = default 1s)")
		queueD   = flag.Int("queue-depth", 0, "factorize requests parked while a shard has no live replica (0 = default 16)")
		queueW   = flag.Duration("queue-wait", 0, "how long a parked factorize waits for the shard (0 = default 2s)")
		repairIv = flag.Duration("repair-interval", 0, "anti-entropy repair cadence re-replicating under-replicated factors (0 = default 250ms, negative disables)")
		maxBody  = flag.Int64("max-body", 0, "request body cap in bytes (0 = default 64 MiB)")
		seed     = flag.Int64("seed", 0, "seed for ring placement and retry jitter")
	)
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		log.Fatal("-backends is required (comma-separated pastix-serve URLs)")
	}

	cfg := gateway.Config{
		Backends:       urls,
		Replicas:       *replicas,
		VNodes:         *vnodes,
		LoadFactor:     *loadF,
		ProbeInterval:  *probeIv,
		AttemptTimeout: *attemptT,
		HedgeDelay:     *hedge,
		Retry: client.Policy{
			MaxAttempts: *retries,
			BaseDelay:   *baseBack,
			MaxDelay:    *maxBack,
			Seed:        *seed,
		},
		QueueDepth:     *queueD,
		QueueWait:      *queueW,
		RepairInterval: *repairIv,
		MaxBodyBytes:   *maxBody,
		Seed:           *seed,
	}
	if err := run(cfg, *addr); err != nil {
		log.Fatal(err)
	}
}

func run(cfg gateway.Config, addr string) error {
	g, err := gateway.New(cfg)
	if err != nil {
		return err
	}
	defer g.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	r := cfg.Replicas
	if r == 0 {
		r = 2
	}
	if r > len(cfg.Backends) {
		r = len(cfg.Backends)
	}
	log.Printf("listening on %s, %d backends, R=%d", ln.Addr(), len(cfg.Backends), r)
	hs := &http.Server{
		Handler:           g.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()
	select {
	case sig := <-stop:
		log.Printf("%v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return hs.Shutdown(ctx)
	case err := <-done:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
