package pastix

import (
	"context"
	"errors"
	"math"
	"testing"

	"github.com/pastix-go/pastix/internal/gen"
	"github.com/pastix-go/pastix/internal/solver"
)

// TestBLRDisabledBitwiseAcrossRuntimes is the zero-value guarantee: with
// Options.BLR unset, every runtime produces exactly the factor it produced
// before the compression subsystem existed — bitwise against the sequential
// reference for the bitwise runtimes, to rounding for mpsim.
func TestBLRDisabledBitwiseAcrossRuntimes(t *testing.T) {
	a := gen.Laplacian3D(8, 8, 8)
	refAn, err := Analyze(a, Options{Processors: 4, Runtime: RuntimeSequential})
	if err != nil {
		t.Fatal(err)
	}
	refF, err := refAn.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	ref := refF.inner
	cases := []struct {
		name    string
		rt      Runtime
		bitwise bool
	}{
		{"seq", RuntimeSequential, true},
		{"shared", RuntimeShared, true},
		{"dynamic", RuntimeDynamic, true},
		{"mpsim", RuntimeMPSim, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			an, err := Analyze(a, Options{Processors: 4, Runtime: tc.rt})
			if err != nil {
				t.Fatal(err)
			}
			f, err := an.Factorize()
			if err != nil {
				t.Fatal(err)
			}
			if f.Compressed() || f.CompressionStats() != nil {
				t.Fatal("BLR-disabled factor reports compression")
			}
			got := f.inner
			for k := range ref.Data {
				if len(ref.Data[k]) != len(got.Data[k]) {
					t.Fatalf("cell %d: storage shape diverged", k)
				}
				for i := range ref.Data[k] {
					if tc.bitwise {
						if ref.Data[k][i] != got.Data[k][i] {
							t.Fatalf("cell %d elem %d: %x vs reference %x", k, i, got.Data[k][i], ref.Data[k][i])
						}
					} else if math.Abs(ref.Data[k][i]-got.Data[k][i]) > 1e-11*(1+math.Abs(ref.Data[k][i])) {
						t.Fatalf("cell %d elem %d: %g vs reference %g", k, i, got.Data[k][i], ref.Data[k][i])
					}
				}
			}
		})
	}
}

// TestBLROptionsValidation pins the Option-level rejections.
func TestBLROptionsValidation(t *testing.T) {
	bad := []Options{
		{BLR: BLROptions{Tol: -1e-8}},
		{BLR: BLROptions{Tol: 1}},
		{BLR: BLROptions{Tol: 1e-8, MinBlockSize: -1}},
		{BLR: BLROptions{Tol: 1e-8}, Runtime: RuntimeMPSim},
		{BLR: BLROptions{Tol: 1e-8}, Faults: &FaultPlan{Seed: 1, Drop: 0.5}},
	}
	for i, o := range bad {
		if err := o.Validate(); !errors.Is(err, ErrBadOptions) {
			t.Errorf("case %d: Validate() = %v, want ErrBadOptions", i, err)
		}
	}
	good := Options{BLR: BLROptions{Tol: 1e-8, MinBlockSize: 16}, Processors: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("valid BLR options rejected: %v", err)
	}
}

// TestBLRFactorizeSolveRefine is the end-to-end contract: analysis-level BLR
// compresses every Factorize* product, solves run on all supported engines,
// and refinement recovers the backward error.
func TestBLRFactorizeSolveRefine(t *testing.T) {
	a := gen.Laplacian3D(9, 9, 9)
	an, err := Analyze(a, Options{Processors: 4, BLR: BLROptions{Tol: 1e-8, MinBlockSize: 8}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := an.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	if !f.Compressed() {
		t.Fatal("analysis-level BLR did not compress the factor")
	}
	st := f.CompressionStats()
	if st == nil || st.BlocksCompressed == 0 || st.CompressedBytes >= st.DenseBytes {
		t.Fatalf("compression stats %+v", st)
	}
	if f.MemoryBytes() != st.CompressedBytes {
		t.Fatalf("MemoryBytes %d != CompressedBytes %d", f.MemoryBytes(), st.CompressedBytes)
	}
	x, b := gen.RHSForSolution(a)
	for _, rt := range []Runtime{RuntimeSequential, RuntimeShared, RuntimeDynamic} {
		res, err := an.SolveOpts(context.Background(), f, b, SolveOptions{Runtime: rt, Refine: &RefineOptions{}})
		if err != nil {
			t.Fatalf("runtime %v: %v", rt, err)
		}
		if res.Refine.BackwardError > 1e-10 {
			t.Errorf("runtime %v: refined backward error %g", rt, res.Refine.BackwardError)
		}
		for i := range x {
			if math.Abs(res.X[i]-x[i]) > 1e-6*(1+math.Abs(x[i])) {
				t.Fatalf("runtime %v: x[%d] = %g, want %g", rt, i, res.X[i], x[i])
			}
		}
	}
	// The message-passing sweep needs dense factors.
	if _, err := an.SolveOpts(context.Background(), f, b, SolveOptions{Runtime: RuntimeMPSim}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("mpsim solve on compressed factor: err = %v, want ErrBadOptions", err)
	}
}

// TestBLRExplicitCompress covers the per-factor path a serving layer uses:
// factorize dense, compress explicitly, and verify validation plus the
// conflict with mpsim-pinned analyses.
func TestBLRExplicitCompress(t *testing.T) {
	a := gen.Laplacian3D(8, 8, 8)
	an, err := Analyze(a, Options{Processors: 2})
	if err != nil {
		t.Fatal(err)
	}
	f, err := an.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	before := f.MemoryBytes()
	if _, err := f.Compress(BLROptions{Tol: -1}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("negative Tol: err = %v", err)
	}
	if _, err := f.Compress(BLROptions{}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("zero Tol: err = %v", err)
	}
	st, err := f.Compress(BLROptions{Tol: 1e-8, MinBlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if st.DenseBytes != before || f.MemoryBytes() >= before {
		t.Errorf("explicit compress accounting: dense %d (resident before %d), now %d",
			st.DenseBytes, before, f.MemoryBytes())
	}
	// Robust factorization with BLR at analysis level compresses too.
	anb, err := Analyze(a, Options{Processors: 2, BLR: BLROptions{Tol: 1e-8, MinBlockSize: 8}})
	if err != nil {
		t.Fatal(err)
	}
	fr, _, err := anb.FactorizeRobust(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !fr.Compressed() {
		t.Error("FactorizeRobust skipped the compression pass")
	}
	// An mpsim-pinned analysis refuses explicit compression.
	anm, err := Analyze(a, Options{Processors: 2, Runtime: RuntimeMPSim})
	if err != nil {
		t.Fatal(err)
	}
	fm, err := anm.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fm.Compress(BLROptions{Tol: 1e-8}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("mpsim-pinned compress: err = %v, want ErrBadOptions", err)
	}
	// The low-level guard also holds if a compressed factor reaches mpsim.
	pb := make([]float64, a.N)
	if _, err := solver.SolveParManyOpts(context.Background(), an.inner.Sched, f.inner, pb, 1, solver.SolveOptions{}); !errors.Is(err, ErrCompressed) {
		t.Errorf("solver-level mpsim guard: err = %v, want ErrCompressed", err)
	}
}
