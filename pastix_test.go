package pastix

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"github.com/pastix-go/pastix/internal/gen"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	a := gen.Laplacian2D(14, 14)
	an, err := Analyze(a, Options{Processors: 4, BlockSize: 16, Ratio2D: 2})
	if err != nil {
		t.Fatal(err)
	}
	f, err := an.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	x, b := gen.RHSForSolution(a)
	got, err := an.Solve(f, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(got[i]-x[i]) > 1e-9 {
			t.Fatalf("x[%d]=%g want %g", i, got[i], x[i])
		}
	}
	if r := Residual(a, got, b); r > 1e-12 {
		t.Fatalf("residual %g", r)
	}
}

// TestPublicAPISharedMemoryRoundTrip exercises the zero-copy shared-memory
// runtime through the public surface: Options.SharedMemory must route both
// Factorize and SolveParallel to it, with the same answers as the default
// message-passing runtime.
func TestPublicAPISharedMemoryRoundTrip(t *testing.T) {
	a := gen.Laplacian2D(14, 14)
	an, err := Analyze(a, Options{Processors: 4, BlockSize: 16, Ratio2D: 2, SharedMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	f, err := an.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	x, b := gen.RHSForSolution(a)
	for name, solve := range map[string]func(*Factor, []float64) ([]float64, error){
		"Solve":         an.Solve,
		"SolveParallel": an.SolveParallel,
	} {
		got, err := solve(f, b)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-9 {
				t.Fatalf("%s: x[%d]=%g want %g", name, i, got[i], x[i])
			}
		}
		if r := Residual(a, got, b); r > 1e-12 {
			t.Fatalf("%s: residual %g", name, r)
		}
	}
}

// TestPublicAPIDynamicRoundTrip exercises the work-stealing runtime through
// the public surface: Options.Runtime = RuntimeDynamic must factorize on the
// shared-memory layout and solve with the same answers — and the same bits —
// as the static shared runtime over the same analysis options.
func TestPublicAPIDynamicRoundTrip(t *testing.T) {
	a := gen.Laplacian2D(14, 14)
	an, err := Analyze(a, Options{Processors: 4, BlockSize: 16, Ratio2D: 2, Runtime: RuntimeDynamic})
	if err != nil {
		t.Fatal(err)
	}
	f, err := an.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	x, b := gen.RHSForSolution(a)
	got, err := an.SolveParallel(f, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(got[i]-x[i]) > 1e-9 {
			t.Fatalf("x[%d]=%g want %g", i, got[i], x[i])
		}
	}
	if r := Residual(a, got, b); r > 1e-12 {
		t.Fatalf("residual %g", r)
	}

	// Bitwise agreement with the static shared runtime through the public API.
	anS, err := Analyze(a, Options{Processors: 4, BlockSize: 16, Ratio2D: 2, Runtime: RuntimeShared})
	if err != nil {
		t.Fatal(err)
	}
	fS, err := anS.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	gotS, err := anS.SolveParallel(fS, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range gotS {
		if got[i] != gotS[i] {
			t.Fatalf("x[%d] = %x dynamic vs %x shared (not bit-identical)", i, got[i], gotS[i])
		}
	}
}

// TestParseRuntime pins the public runtime-name surface shared by the CLIs.
func TestParseRuntime(t *testing.T) {
	good := map[string]Runtime{
		"":           RuntimeAuto,
		"auto":       RuntimeAuto,
		"seq":        RuntimeSequential,
		"sequential": RuntimeSequential,
		"mpsim":      RuntimeMPSim,
		"shared":     RuntimeShared,
		"dynamic":    RuntimeDynamic,
	}
	for s, want := range good {
		rt, err := ParseRuntime(s)
		if err != nil || rt != want {
			t.Fatalf("ParseRuntime(%q) = %v, %v; want %v", s, rt, err, want)
		}
	}
	if _, err := ParseRuntime("gpu"); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("ParseRuntime(gpu) = %v, want ErrBadOptions", err)
	}
	// SharedMemory conflicts with a non-shared explicit runtime.
	a := gen.Laplacian2D(8, 8)
	if _, err := Analyze(a, Options{Processors: 2, SharedMemory: true, Runtime: RuntimeMPSim}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("SharedMemory+RuntimeMPSim not rejected: %v", err)
	}
	// ...but agrees with RuntimeShared.
	if _, err := Analyze(a, Options{Processors: 2, SharedMemory: true, Runtime: RuntimeShared}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicStats(t *testing.T) {
	a := gen.Laplacian2D(16, 16)
	an, err := Analyze(a, Options{Processors: 8, BlockSize: 16, Ratio2D: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := an.Stats()
	if st.N != a.N || st.NNZA != a.NNZOffDiag() {
		t.Fatal("basic shape stats wrong")
	}
	if st.ScalarNNZL <= 0 || st.ScalarOPC <= 0 || st.BlockNNZL < st.ScalarNNZL {
		t.Fatalf("fill stats inconsistent: %+v", st)
	}
	if st.Processors != 8 || st.Tasks <= st.ColumnBlocks/2 {
		t.Fatalf("schedule stats inconsistent: %+v", st)
	}
	if st.PredictedTime <= 0 {
		t.Fatal("predicted time missing")
	}
	if st.LoadImbalance < 1 || st.MaxMemoryPerProc <= 0 {
		t.Fatalf("balance stats missing: %+v", st)
	}
	if st.CommVolume <= 0 {
		t.Fatal("comm volume missing for P=8")
	}
}

func TestPublicAPIErrors(t *testing.T) {
	if _, err := Analyze(nil, Options{}); err == nil {
		t.Fatal("nil matrix must error")
	}
	a := gen.Laplacian2D(5, 5)
	if _, err := Analyze(a, Options{Ordering: OrderingMethod(99)}); err == nil {
		t.Fatal("unknown ordering must error")
	}
	an, err := Analyze(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := an.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := an.Solve(f, make([]float64, 3)); err == nil {
		t.Fatal("wrong rhs length must error")
	}
	other, _ := Analyze(a, Options{})
	if _, err := other.Solve(f, make([]float64, a.N)); err == nil {
		t.Fatal("foreign factor must error")
	}
}

func TestPublicOrderingMethods(t *testing.T) {
	a := gen.Laplacian2D(10, 10)
	_, b := gen.RHSForSolution(a)
	for _, m := range []OrderingMethod{OrderScotchLike, OrderMetisLike, OrderAMD, OrderNatural} {
		an, err := Analyze(a, Options{Ordering: m})
		if err != nil {
			t.Fatalf("%d: %v", m, err)
		}
		f, err := an.Factorize()
		if err != nil {
			t.Fatalf("%d: %v", m, err)
		}
		x, err := an.Solve(f, b)
		if err != nil {
			t.Fatal(err)
		}
		if r := Residual(a, x, b); r > 1e-12 {
			t.Fatalf("%d: residual %g", m, r)
		}
	}
}

func TestRSAThroughPublicAPI(t *testing.T) {
	a := gen.Laplacian2D(6, 6)
	var buf bytes.Buffer
	if err := WriteRSA(&buf, a, "laplacian"); err != nil {
		t.Fatal(err)
	}
	got, title, err := ReadRSA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if title != "laplacian" || got.N != a.N {
		t.Fatalf("round trip: %q n=%d", title, got.N)
	}
}

func TestSolveParallelAndRefined(t *testing.T) {
	a := gen.Laplacian2D(16, 16)
	an, err := Analyze(a, Options{Processors: 4, BlockSize: 16, Ratio2D: 2})
	if err != nil {
		t.Fatal(err)
	}
	f, err := an.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	x, b := gen.RHSForSolution(a)
	seq, err := an.Solve(f, b)
	if err != nil {
		t.Fatal(err)
	}
	par, err := an.SolveParallel(f, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if math.Abs(seq[i]-par[i]) > 1e-11*(1+math.Abs(seq[i])) {
			t.Fatalf("parallel solve differs at %d", i)
		}
	}
	ref, err := an.SolveRefined(f, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(ref[i]-x[i]) > 1e-10 {
			t.Fatalf("refined solve off at %d", i)
		}
	}
	if Residual(a, ref, b) > Residual(a, seq, b)*1.0001 {
		t.Fatal("refinement worsened the residual")
	}
}

func TestComplexPublicAPI(t *testing.T) {
	n := 8 * 8
	zb := NewZBuilder(n)
	for j := 0; j < 8; j++ {
		for i := 0; i < 8; i++ {
			v := i + j*8
			zb.Add(v, v, complex(4.5, 1.0))
			if i+1 < 8 {
				zb.Add(v, v+1, complex(-1, 0.1))
			}
			if j+1 < 8 {
				zb.Add(v, v+8, complex(-1, -0.1))
			}
		}
	}
	az := zb.Build()
	an, err := AnalyzeComplex(az, Options{Processors: 3, BlockSize: 8, Ratio2D: 2})
	if err != nil {
		t.Fatal(err)
	}
	zf, err := an.FactorizeComplex(az)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(float64(i%4), -float64(i%3))
	}
	b := make([]complex128, n)
	az.MatVec(x, b)
	got, err := an.SolveComplex(zf, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if d := got[i] - x[i]; real(d)*real(d)+imag(d)*imag(d) > 1e-18 {
			t.Fatalf("x[%d]=%v want %v", i, got[i], x[i])
		}
	}
	if r := ZResidual(az, got, b); r > 1e-12 {
		t.Fatalf("residual %g", r)
	}
	// Error paths.
	other, _ := Analyze(gen.Laplacian2D(8, 8), Options{})
	if _, err := other.SolveComplex(zf, b); err == nil {
		t.Fatal("foreign complex factor must error")
	}
	if _, err := an.SolveComplex(zf, make([]complex128, 3)); err == nil {
		t.Fatal("bad rhs length must error")
	}
}

func TestSolveManyPublic(t *testing.T) {
	a := gen.Laplacian2D(10, 10)
	an, err := Analyze(a, Options{Processors: 2})
	if err != nil {
		t.Fatal(err)
	}
	f, err := an.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	n := a.N
	const nrhs = 3
	b := make([]float64, n*nrhs)
	for i := range b {
		b[i] = float64(i%13) - 6
	}
	got, err := an.SolveMany(f, b, nrhs)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < nrhs; r++ {
		want, err := an.Solve(f, b[r*n:(r+1)*n])
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if math.Abs(got[i+r*n]-want[i]) > 1e-11*(1+math.Abs(want[i])) {
				t.Fatalf("rhs %d x[%d]", r, i)
			}
		}
	}
	if _, err := an.SolveMany(f, b, 0); err == nil {
		t.Fatal("nrhs=0 must error")
	}
	if _, err := an.SolveMany(f, b[:n], nrhs); err == nil {
		t.Fatal("short panel must error")
	}
}

func TestSchurComplementPublic(t *testing.T) {
	a := gen.Laplacian2D(8, 8)
	var iface []int
	for j := 0; j < 8; j++ {
		iface = append(iface, 4+j*8) // middle grid column
	}
	s, vars, err := SchurComplement(a, iface, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ns := len(iface)
	if len(s) != ns*ns || len(vars) != ns {
		t.Fatalf("shapes: %d, %d", len(s), len(vars))
	}
	// Symmetric, diagonally positive.
	for i := 0; i < ns; i++ {
		if s[i+i*ns] <= 0 {
			t.Fatalf("S diagonal %d not positive", i)
		}
		for j := 0; j < ns; j++ {
			if math.Abs(s[i+j*ns]-s[j+i*ns]) > 1e-12 {
				t.Fatal("S not symmetric")
			}
		}
	}
}

func TestPublicMiscCoverage(t *testing.T) {
	// Builders.
	eb := NewElementBuilder(3)
	eb.AddElement([]int{0, 1}, []float64{1, -1, -1, 1})
	m := eb.Build()
	if m.At(0, 0) != 1 {
		t.Fatal("element builder")
	}
	nb := NewBuilder(2)
	nb.Add(0, 0, 1)
	nb.Add(1, 1, 1)
	_ = nb.Build()

	// Matrix Market through the facade.
	a := gen.Laplacian2D(5, 5)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a, "mm facade"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != a.N {
		t.Fatal("mm round trip")
	}

	// Schedule reporting + phase times.
	an, err := Analyze(a, Options{Processors: 2})
	if err != nil {
		t.Fatal(err)
	}
	var g, c, s bytes.Buffer
	if err := an.WriteScheduleGantt(&g, 40); err != nil {
		t.Fatal(err)
	}
	if err := an.WriteScheduleCSV(&c); err != nil {
		t.Fatal(err)
	}
	if err := an.WriteScheduleSummary(&s); err != nil {
		t.Fatal(err)
	}
	if g.Len() == 0 || c.Len() == 0 || s.Len() == 0 {
		t.Fatal("empty reports")
	}
	ph := an.PhaseTimes()
	total := ph[0] + ph[1] + ph[2] + ph[3]
	if total <= 0 {
		t.Fatal("phase times missing")
	}

	// AnalyzeComplex error paths.
	if _, err := AnalyzeComplex(nil, Options{}); err == nil {
		t.Fatal("nil complex matrix must error")
	}
	badZ := &ZMatrix{N: 1, ColPtr: []int{0, 0}}
	if _, err := AnalyzeComplex(badZ, Options{}); err == nil {
		t.Fatal("invalid complex matrix must error")
	}
	zf := &ZFactor{}
	if _, err := an.FactorizeComplex(nil); err == nil {
		t.Fatal("nil complex factorize must error")
	}
	if _, err := an.SolveComplex(zf, make([]complex128, a.N)); err == nil {
		t.Fatal("foreign complex factor must error")
	}
}
