package pastix

import (
	"context"
	"fmt"

	"github.com/pastix-go/pastix/internal/solver"
	"github.com/pastix-go/pastix/internal/trace"
)

// RefineOptions configures adaptive iterative refinement of a solve
// (SolveOptions.Refine). The zero value selects the analysis defaults.
type RefineOptions struct {
	// Tol is the componentwise backward-error target
	// ‖Ax−b‖∞/(‖A‖∞‖x‖∞+‖b‖∞). 0 selects Options.RefineTol (default 1e-10).
	Tol float64
	// MaxIter caps the correction sweeps; 0 selects the adaptive default.
	MaxIter int
}

// SolveOptions configures SolveOpts, the unified solve entry point every
// other Solve* variant is a wrapper over.
type SolveOptions struct {
	// NRHS is the number of right-hand sides: b is an n×NRHS column-major
	// panel in the original ordering. 0 means 1.
	NRHS int
	// Runtime selects the solve engine. RuntimeAuto (the default) takes the
	// analysis runtime, and when that is also Auto picks sequential on one
	// processor (untraced) and the level-set engine otherwise.
	//
	//   - RuntimeSequential: the reference kernels (Factors.Solve, or the
	//     blocked panel kernels for NRHS > 1).
	//   - RuntimeShared: the level-set engine with the static cost-balanced
	//     partition of each level.
	//   - RuntimeDynamic: the level-set engine with dynamic (atomic-fetch)
	//     cell dispatch inside each level.
	//   - RuntimeMPSim: the paper-faithful message-passing panel sweep.
	//
	// Both level-set dispatch modes and the sequential single-RHS path return
	// bitwise-identical solutions (contributions are pulled in the canonical
	// sequential order); RuntimeMPSim matches to rounding. For NRHS > 1 the
	// sequential panel kernels scale by reciprocal pivots, so they differ
	// from the level-set engine in the last bits (the level-set engine is
	// per-column bit-identical to the single-RHS sequential solve, which is
	// the stronger contract).
	Runtime Runtime
	// Refine, when non-nil, applies adaptive iterative refinement to every
	// solution column and reports the aggregated RefineStats in the result.
	Refine *RefineOptions
	// Trace, when non-nil, records the solve's phase and message events into
	// a fresh Trace returned in the result. A standalone solve trace holds no
	// factorization tasks, so it supports WriteChromeTrace but not the
	// schedule-divergence Summary/WriteReport. Tracing needs a parallel
	// engine: combining it with a (resolved) sequential runtime fails with
	// ErrBadOptions.
	Trace *TraceOptions
}

// PlanStats summarises the solve schedule the level-set engine ran: cell and
// level counts, how many levels ran as parallel steps vs were collapsed into
// sequential chains by the hybrid cutoff, and the widest level.
type PlanStats = solver.PlanStats

// SolveResult is the outcome of SolveOpts.
type SolveResult struct {
	// X is the solution panel, n×NRHS column-major in the original ordering.
	X []float64
	// Refine reports the refinement sweeps when SolveOptions.Refine was set:
	// worst-column iteration count and backward error, conjunction of
	// per-column convergence, and (single RHS only) the error trajectory.
	Refine *RefineStats
	// Trace is the recorded execution when SolveOptions.Trace was set.
	Trace *Trace
	// Plan describes the level-set solve schedule when that engine ran
	// (zero value for the sequential and message-passing engines).
	Plan PlanStats
}

// SolveOpts solves A·X = B under explicit options — the unified solve entry
// point. b is an n×NRHS column-major panel in the original ordering (a plain
// right-hand side at NRHS ≤ 1); the solution panel comes back in the same
// layout. See SolveOptions for engine selection and determinism guarantees.
func (an *Analysis) SolveOpts(ctx context.Context, f *Factor, b []float64, opts SolveOptions) (*SolveResult, error) {
	return an.solveOpts(ctx, f, b, opts, nil)
}

// solveOpts is the core every Solve* entry point funnels through; rec is the
// caller-owned recorder SolveParallelTraced appends into (nil otherwise,
// mutually exclusive with opts.Trace).
func (an *Analysis) solveOpts(ctx context.Context, f *Factor, b []float64, opts SolveOptions, rec *trace.Recorder) (*SolveResult, error) {
	n := an.inner.A.N
	if f == nil || f.an != an.inner {
		return nil, ErrFactorMismatch
	}
	nrhs := opts.NRHS
	if nrhs == 0 {
		nrhs = 1
	}
	if nrhs == 1 && len(b) != n {
		return nil, fmt.Errorf("pastix: rhs length %d, matrix order %d: %w", len(b), n, ErrShape)
	}
	if nrhs != 1 && (nrhs < 0 || len(b) != n*nrhs) {
		return nil, fmt.Errorf("pastix: rhs panel must be n×nrhs = %d×%d: %w", n, nrhs, ErrShape)
	}
	if !opts.Runtime.Valid() {
		return nil, fmt.Errorf("%w: unknown runtime %d", ErrBadOptions, opts.Runtime)
	}
	if opts.Refine != nil {
		if opts.Refine.Tol < 0 {
			return nil, fmt.Errorf("%w: Refine.Tol %g is negative", ErrBadOptions, opts.Refine.Tol)
		}
		if opts.Refine.MaxIter < 0 {
			return nil, fmt.Errorf("%w: Refine.MaxIter %d is negative", ErrBadOptions, opts.Refine.MaxIter)
		}
	}
	if opts.Trace != nil && rec != nil {
		return nil, fmt.Errorf("%w: SolveOptions.Trace inside an already-traced solve", ErrBadOptions)
	}
	tracing := opts.Trace != nil || rec != nil

	// Resolve the engine: an explicit request wins, then the analysis
	// runtime, then the historical heuristic.
	rt := opts.Runtime
	if rt == RuntimeAuto {
		rt = an.runtime
	}
	if rt == RuntimeAuto {
		switch {
		case an.faults.Active():
			rt = RuntimeMPSim
		case an.inner.Sched.P == 1 && !tracing:
			rt = RuntimeSequential
		default:
			rt = RuntimeShared
		}
	}
	if rt == RuntimeSequential && tracing {
		return nil, fmt.Errorf("%w: tracing requires a parallel solve engine, not %v", ErrBadOptions, rt)
	}
	// Fault injection lives in the message-passing runtime. The sequential
	// reference never armed it (Solve has always ignored the plan), so it
	// stays permitted; the level-set engines would silently drop the plan.
	if an.faults.Active() && rt != RuntimeMPSim && rt != RuntimeSequential {
		return nil, fmt.Errorf("%w: fault injection requires the message-passing runtime, not %v", ErrBadOptions, rt)
	}
	// The message-passing sweep reads the dense factor arrays, which a BLR
	// compression pass released.
	if rt == RuntimeMPSim && f.inner.Compressed() {
		return nil, fmt.Errorf("%w: the message-passing solve needs dense factors, and this factor is BLR-compressed", ErrBadOptions)
	}

	res := &SolveResult{}
	sch := an.inner.Sched
	if opts.Trace != nil {
		cap := opts.Trace.Buffer
		if cap <= 0 {
			cap = 4*len(sch.Tasks)/sch.P + 64
		}
		rec = trace.New(sch.P, cap)
		res.Trace = &Trace{rec: rec, sch: sch, free: rt == RuntimeDynamic}
	}

	pb := make([]float64, len(b))
	for r := 0; r < nrhs; r++ {
		for newI, old := range an.inner.Perm {
			pb[newI+r*n] = b[old+r*n]
		}
	}

	var px []float64
	var err error
	switch rt {
	case RuntimeSequential:
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if nrhs == 1 {
			px = f.inner.Solve(pb)
		} else {
			px = f.inner.SolveMany(pb, nrhs)
		}
	case RuntimeMPSim:
		px, err = solver.SolveParManyOpts(ctx, sch, f.inner, pb, nrhs,
			solver.SolveOptions{Trace: rec, Faults: an.faults})
	case RuntimeShared, RuntimeDynamic:
		pl := an.inner.SolvePlanFor(sch.P)
		px, err = solver.SolveLevelCtx(ctx, pl, f.inner, pb,
			solver.LevelOptions{NRHS: nrhs, Dynamic: rt == RuntimeDynamic, Trace: rec})
		res.Plan = pl.Stats()
	default:
		err = fmt.Errorf("%w: unknown runtime %d", ErrBadOptions, rt)
	}
	if err != nil {
		return nil, err
	}

	if opts.Refine != nil {
		tol := opts.Refine.Tol
		if tol == 0 {
			tol = an.refineTol
		}
		pa := f.pa
		if pa == nil {
			pa = an.inner.A
		}
		agg := RefineStats{Converged: true}
		for r := 0; r < nrhs; r++ {
			xr, st := f.inner.RefineAdaptive(pa, pb[r*n:(r+1)*n], px[r*n:(r+1)*n], tol, opts.Refine.MaxIter)
			copy(px[r*n:(r+1)*n], xr)
			if st.Iterations > agg.Iterations {
				agg.Iterations = st.Iterations
			}
			if st.BackwardError > agg.BackwardError {
				agg.BackwardError = st.BackwardError
			}
			agg.Converged = agg.Converged && st.Converged
			if nrhs == 1 {
				agg.Trajectory = st.Trajectory
			}
		}
		res.Refine = &agg
	}

	x := make([]float64, len(b))
	for r := 0; r < nrhs; r++ {
		for newI, old := range an.inner.Perm {
			x[old+r*n] = px[newI+r*n]
		}
	}
	res.X = x
	return res, nil
}

// PrepareSolve warms the solve-path caches for factor f: the solve DAG and
// the level-set plan for the schedule's processor count (both per-analysis),
// and the packed solve panels of f (per-factor). All of it is built lazily on
// first use anyway; a serving layer calls this right after factorization so
// the first request does not pay the one-time cost. Safe concurrently with
// solves.
func (an *Analysis) PrepareSolve(f *Factor) (PlanStats, error) {
	if f == nil || f.an != an.inner {
		return PlanStats{}, ErrFactorMismatch
	}
	return an.inner.PrepareSolve(f.inner), nil
}
