package pastix_test

import (
	"errors"
	"testing"

	"github.com/pastix-go/pastix"
)

// notSPD builds the 2×2 matrix [[1,1],[1,1]]: the first pivot is 1, the
// second elimination step hits a zero pivot, so the unpivoted LDLᵀ breaks
// down deterministically.
func notSPD() *pastix.Matrix {
	b := pastix.NewBuilder(2)
	b.Add(0, 0, 1)
	b.Add(1, 1, 1)
	b.Add(1, 0, 1)
	return b.Build()
}

func TestErrNotSPDIsAs(t *testing.T) {
	an, err := pastix.Analyze(notSPD(), pastix.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = an.Factorize()
	if err == nil {
		t.Fatal("factorizing a singular matrix succeeded")
	}
	if !errors.Is(err, pastix.ErrNotSPD) {
		t.Fatalf("errors.Is(err, ErrNotSPD) false for %v", err)
	}
	var zp *pastix.ZeroPivotError
	if !errors.As(err, &zp) {
		t.Fatalf("errors.As(*ZeroPivotError) false for %v", err)
	}
	if zp.Column != 1 {
		t.Fatalf("offending column %d, want 1", zp.Column)
	}
	// The sentinels must stay distinguishable.
	if errors.Is(err, pastix.ErrShape) || errors.Is(err, pastix.ErrBadOptions) || errors.Is(err, pastix.ErrFactorMismatch) {
		t.Fatalf("pivot error matches an unrelated sentinel: %v", err)
	}
}

func TestErrShapeAndFactorMismatch(t *testing.T) {
	a := pastix.NewBuilder(3)
	a.Add(0, 0, 4)
	a.Add(1, 1, 4)
	a.Add(2, 2, 4)
	a.Add(1, 0, -1)
	a.Add(2, 1, -1)
	m := a.Build()
	an, err := pastix.Analyze(m, pastix.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := an.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := an.Solve(f, make([]float64, 2)); !errors.Is(err, pastix.ErrShape) {
		t.Fatalf("short rhs: got %v, want ErrShape", err)
	}
	an2, err := pastix.Analyze(m, pastix.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := an2.Solve(f, make([]float64, 3)); !errors.Is(err, pastix.ErrFactorMismatch) {
		t.Fatalf("foreign factor: got %v, want ErrFactorMismatch", err)
	}
	if _, err := an2.SolveParallel(f, make([]float64, 3)); !errors.Is(err, pastix.ErrFactorMismatch) {
		t.Fatalf("foreign factor (parallel): got %v, want ErrFactorMismatch", err)
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (pastix.Options{}).Validate(); err != nil {
		t.Fatalf("zero-value options invalid: %v", err)
	}
	bad := []pastix.Options{
		{Processors: -1},
		{BlockSize: -8},
		{Ratio2D: -2},
		{LeafSize: -1},
		{Ordering: pastix.OrderingMethod(99)},
	}
	for i, o := range bad {
		if err := o.Validate(); !errors.Is(err, pastix.ErrBadOptions) {
			t.Fatalf("case %d: Validate() = %v, want ErrBadOptions", i, err)
		}
		if _, err := pastix.Analyze(notSPD(), o); !errors.Is(err, pastix.ErrBadOptions) {
			t.Fatalf("case %d: Analyze = %v, want ErrBadOptions", i, err)
		}
	}
}
